//! Ablation A2 — deferred recovery (§4.4.1): the first post-recovery pass
//! pays for epoch claims (CAS + persist per node encountered, at most one
//! insert repair per traversal); steady-state reads pay nothing. This
//! bench quantifies that amortized cost and shows it is bounded — the
//! design that keeps restart time constant (§4.1.5).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};

fn bench_deferred(c: &mut Criterion) {
    let records = 20_000u64;
    let d = bench::Deployment {
        tracked: true,
        ..bench::Deployment::simple(records)
    };
    let list = bench::build_upskiplist(&d, bench::UpSkipListOpts::keys_per_node(64));
    for i in 0..records {
        list.insert(ycsb::key_of(i), i + 1);
    }

    let mut group = c.benchmark_group("deferred_recovery");
    group.sample_size(10);

    // Steady state: all nodes carry the current epoch.
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    group.bench_function("steady_state_get", |b| {
        b.iter(|| {
            let k = ycsb::key_of(rng.gen_range(0..records));
            std::hint::black_box(list.get(k))
        })
    });

    // Post-recovery: every epoch bump makes all nodes stale again, so
    // each iteration batch starts from a freshly "recovered" structure and
    // the measured gets include the lazy per-node recovery work.
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    group.bench_function("first_pass_after_recovery", |b| {
        b.iter_custom(|iters| {
            let mut total = std::time::Duration::ZERO;
            let mut remaining = iters;
            while remaining > 0 {
                let batch = remaining.min(2_000);
                list.recover(); // new epoch: all nodes stale
                let t0 = std::time::Instant::now();
                for _ in 0..batch {
                    let k = ycsb::key_of(rng.gen_range(0..records));
                    std::hint::black_box(list.get(k));
                }
                total += t0.elapsed();
                remaining -= batch;
            }
            total
        })
    });
    // Eager alternative (the design §4.4.1 argues against): pay the whole
    // repair bill at restart, then reads are steady-state from op one.
    group.bench_function("eager_recovery_then_get", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        b.iter_custom(|iters| {
            let mut total = std::time::Duration::ZERO;
            let mut remaining = iters;
            while remaining > 0 {
                let batch = remaining.min(2_000);
                list.recover();
                let t0 = std::time::Instant::now();
                list.recover_eagerly(); // O(structure) restart cost, timed
                for _ in 0..batch {
                    let k = ycsb::key_of(rng.gen_range(0..records));
                    std::hint::black_box(list.get(k));
                }
                total += t0.elapsed();
                remaining -= batch;
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, bench_deferred);
criterion_main!(benches);
