//! Shared plumbing for the metrics experiments: per-op pmem attribution
//! over a set of pools, latency summaries from the driver's `lat.<op>`
//! histograms, and row emission into an [`obs::report::MetricsReport`].

use std::sync::Arc;

use obs::report::MetricsReport;
use obs::Registry;
use pmem::stats::OP_KINDS;
use pmem::{OpKind, Pool, StatsSnapshot};

use crate::{build_upskiplist, Deployment, UpSkipListOpts};

/// Aggregate per-op pmem counters across `pools` (a structure's whole
/// footprint, whether one pool or one per NUMA node).
pub fn stats_by_op(pools: &[Arc<Pool>]) -> [StatsSnapshot; OP_KINDS] {
    let mut total = [StatsSnapshot::default(); OP_KINDS];
    for p in pools {
        for (t, b) in total.iter_mut().zip(p.stats().snapshot_by_op()) {
            *t = t.plus(&b);
        }
    }
    total
}

/// Append per-op pmem-attribution rows for every op kind that executed:
/// `ops[kind]` driver-level calls turn the counter deltas into
/// reads/writes/flushes/fences *per operation*.
pub fn push_attribution_rows(
    report: &mut MetricsReport,
    structure: &str,
    before: &[StatsSnapshot; OP_KINDS],
    after: &[StatsSnapshot; OP_KINDS],
    ops: &[u64; OP_KINDS],
) {
    for kind in OpKind::ALL {
        let n = ops[kind as usize];
        if n == 0 {
            continue;
        }
        let d = after[kind as usize].since(&before[kind as usize]);
        let per = |v: u64| v as f64 / n as f64;
        let op = kind.name();
        report.push(structure, op, "ops", n as f64);
        report.push(structure, op, "reads_per_op", per(d.reads));
        report.push(structure, op, "writes_per_op", per(d.writes));
        report.push(structure, op, "flushes_per_op", per(d.flushes));
        report.push(structure, op, "fences_per_op", per(d.fences));
    }
}

/// Single-threaded dynamic-detector probe: run tagged insert / get /
/// remove passes against a fresh tracked UPSkipList with the checker at
/// [`pmem::PmCheckLevel::Track`] and return the PMD02 (redundant-fence)
/// tally per [`OpKind`] alongside the op counts per kind. The fence-diet
/// insert path must keep its bucket at zero: every `sync()` ack fence is
/// skipped outright when nothing is pending, so an empty fence here means
/// a code path still fences individually inside the prepare window.
pub fn pmd02_probe(opts: UpSkipListOpts, records: u64) -> ([u64; OP_KINDS], [u64; OP_KINDS]) {
    let d = Deployment {
        tracked: true,
        ..Deployment::simple(records)
    };
    let list = build_upskiplist(&d, opts);
    for p in list.space().pools() {
        p.set_check_level(pmem::PmCheckLevel::Track);
    }
    pmem::check::reset_thread();
    let _ = pmem::check::take_redundant_fences_by_op();
    let mut ops = [0u64; OP_KINDS];
    {
        let _t = pmem::op_tag(OpKind::Insert);
        for i in 0..records {
            list.insert(2 * i + 1, i);
            list.sync();
            ops[OpKind::Insert as usize] += 1;
        }
    }
    {
        let _t = pmem::op_tag(OpKind::Get);
        for i in 0..records {
            std::hint::black_box(list.get(2 * i + 1));
            ops[OpKind::Get as usize] += 1;
        }
    }
    {
        let _t = pmem::op_tag(OpKind::Remove);
        for i in 0..records / 2 {
            list.remove(4 * i + 1);
            list.sync();
            ops[OpKind::Remove as usize] += 1;
        }
    }
    for p in list.space().pools() {
        let _ = p.take_check_findings();
    }
    (pmem::check::take_redundant_fences_by_op(), ops)
}

/// Append one `pmd02_redundant_fences` row per op kind that executed in a
/// [`pmd02_probe`] run.
pub fn push_pmd02_rows(
    report: &mut MetricsReport,
    structure: &str,
    pmd02: &[u64; OP_KINDS],
    ops: &[u64; OP_KINDS],
) {
    for kind in OpKind::ALL {
        if ops[kind as usize] == 0 {
            continue;
        }
        report.push(
            structure,
            kind.name(),
            "pmd02_redundant_fences",
            pmd02[kind as usize] as f64,
        );
    }
}

/// The `(histogram name, op label)` pairs the driver records into.
pub const LAT_HISTOGRAMS: [(&str, &str); 5] = [
    ("lat.get", "get"),
    ("lat.insert", "insert"),
    ("lat.remove", "remove"),
    ("lat.scan", "scan"),
    ("lat.batch", "batch"),
];

/// Append latency-summary rows (count, mean, p50/p95/p99, max — all ns)
/// for every `lat.<op>` histogram in `registry` that recorded samples.
pub fn push_latency_rows(report: &mut MetricsReport, structure: &str, registry: &Registry) {
    for (name, op) in LAT_HISTOGRAMS {
        let s = registry.histogram(name).snapshot().summary();
        if s.count == 0 {
            continue;
        }
        report.push(structure, op, "lat_count", s.count as f64);
        report.push(structure, op, "lat_mean_ns", s.mean as f64);
        report.push(structure, op, "lat_p50_ns", s.p50 as f64);
        report.push(structure, op, "lat_p95_ns", s.p95 as f64);
        report.push(structure, op, "lat_p99_ns", s.p99 as f64);
        report.push(structure, op, "lat_max_ns", s.max as f64);
    }
}

/// Append UPSkipList structure-internal counters (CAS retries, finger
/// hit rate, splits, allocator paths, traversal hops).
pub fn push_struct_rows(
    report: &mut MetricsReport,
    structure: &str,
    m: &upskiplist::StructMetricsSnapshot,
) {
    let rows: [(&str, u64); 20] = [
        ("cas_retries", m.cas_retries),
        ("lock_waits", m.lock_waits),
        ("node_splits", m.node_splits),
        ("finger_hits", m.finger_hits),
        ("finger_misses", m.finger_misses),
        ("shadow_hits", m.shadow_hits),
        ("shadow_misses", m.shadow_misses),
        ("shadow_rebuilds", m.shadow_rebuilds),
        ("shadow_invalidations", m.shadow_invalidations),
        ("prefetch_issued", m.prefetch_issued),
        ("compactions", m.compactions),
        ("nodes_reclaimed", m.nodes_reclaimed),
        ("alloc_fast_path", m.alloc.fast_allocs),
        ("alloc_slow_path", m.alloc.slow_allocs),
        ("alloc_magazine_hits", m.alloc.magazine_hits),
        ("alloc_leases", m.alloc.leases),
        ("alloc_lease_blocks", m.alloc.lease_blocks),
        ("alloc_outbox_flushes", m.alloc.outbox_flushes),
        ("alloc_outbox_blocks", m.alloc.outbox_blocks),
        ("alloc_heals", m.alloc.heals),
    ];
    for (metric, v) in rows {
        report.push(structure, "struct", metric, v as f64);
    }
    report.push(structure, "struct", "traversal_hops", m.total_hops() as f64);
}

/// Write a report to `path` as JSON or CSV by extension, creating parent
/// directories as needed.
pub fn write_report(report: &MetricsReport, path: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let body = if path.ends_with(".csv") {
        report.to_csv()
    } else {
        report.to_json()
    };
    std::fs::write(path, body).expect("write metrics report");
    eprintln!("wrote {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_rows_skip_idle_kinds_and_divide_by_ops() {
        let before = [StatsSnapshot::default(); OP_KINDS];
        let mut after = [StatsSnapshot::default(); OP_KINDS];
        after[OpKind::Get as usize].reads = 100;
        let mut ops = [0u64; OP_KINDS];
        ops[OpKind::Get as usize] = 50;
        let mut r = MetricsReport::new("t");
        push_attribution_rows(&mut r, "s", &before, &after, &ops);
        assert!(r
            .rows
            .iter()
            .any(|row| row.op == "get" && row.metric == "reads_per_op" && row.value == 2.0));
        assert!(r.rows.iter().all(|row| row.op == "get"));
    }
}
