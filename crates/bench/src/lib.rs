//! # bench — the experiment harness
//!
//! One binary per table/figure of the thesis's evaluation (Chapter 5) and
//! correctness study (Chapter 6); see DESIGN.md's experiment index:
//!
//! * `throughput` — Figs 5.1 & 5.2 (YCSB A–D thread sweeps, 3 structures)
//! * `pointer_compare` — Fig 5.3 (RIV vs fat pointers, read-only, K = 1)
//! * `numa_compare` — Fig 5.4 & Table 5.2 (striped pool vs per-node pools)
//! * `latency` — Figs 5.5/5.6 & Table 5.3 (per-op latency percentiles)
//! * `recovery` — Table 5.4 (post-crash reconnection time)
//! * `crash_test` — Chapter 6 (crash injection + strict-linearizability
//!   analysis)
//! * `traversal` — E-series extension: fingered/batched descents vs the
//!   seed head-descent (throughput and pmem reads per op)

pub mod args;
pub mod driver;
pub mod index;
pub mod metrics;
pub mod sweep;

pub use args::{default_thread_sweep, Args};
pub use driver::{load, percentile, run, run_batched, run_metrics, RunResult};
pub use index::{
    build_bztree, build_hybridskip, build_pmdkskip, build_pool, build_upskiplist,
    build_upskiplist_at, build_upskiplist_shards, Deployment, KvIndex, UpSkipListOpts,
};
