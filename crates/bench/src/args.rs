//! Minimal `--key value` argument parsing for the experiment binaries
//! (kept dependency-free on purpose).

use std::collections::HashMap;

/// Parsed `--key value` pairs from `std::env::args`.
#[derive(Debug, Default)]
pub struct Args {
    map: HashMap<String, String>,
}

impl Args {
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    #[allow(clippy::should_implement_trait)] // not a FromIterator impl
    pub fn from_iter(iter: impl IntoIterator<Item = String>) -> Self {
        let mut map = HashMap::new();
        let mut iter = iter.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(v) if !v.starts_with("--") => iter.next().unwrap(),
                    _ => String::from("true"),
                };
                map.insert(key.to_string(), value);
            }
        }
        Self { map }
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(|s| s.as_str())
    }

    pub fn u64(&self, key: &str, default: u64) -> u64 {
        self.get(key)
            .map(|v| v.parse().expect("numeric argument"))
            .unwrap_or(default)
    }

    pub fn usize(&self, key: &str, default: usize) -> usize {
        self.u64(key, default as u64) as usize
    }

    pub fn flag(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Comma-separated list.
    pub fn list(&self, key: &str, default: &str) -> Vec<String> {
        self.get(key)
            .unwrap_or(default)
            .split(',')
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect()
    }

    /// Comma-separated usize list.
    pub fn usize_list(&self, key: &str, default: &str) -> Vec<usize> {
        self.list(key, default)
            .into_iter()
            .map(|s| s.parse().expect("numeric list argument"))
            .collect()
    }
}

/// Default thread sweep: powers of two up to 2× the machine parallelism.
pub fn default_thread_sweep() -> Vec<usize> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut v = vec![1];
    while *v.last().unwrap() < cores * 2 {
        v.push(v.last().unwrap() * 2);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_pairs_flags_and_lists() {
        let a = Args::from_iter(
            ["--threads", "1,2,4", "--records", "100", "--tracked"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(a.usize_list("threads", ""), vec![1, 2, 4]);
        assert_eq!(a.u64("records", 0), 100);
        assert!(a.flag("tracked"));
        assert!(!a.flag("absent"));
        assert_eq!(a.u64("absent", 7), 7);
    }

    #[test]
    fn thread_sweep_is_nonempty_ascending() {
        let v = default_thread_sweep();
        assert!(!v.is_empty());
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }
}
