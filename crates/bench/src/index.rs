//! A uniform key-value interface over the structures under test, plus
//! sized constructors for benchmark-scale deployments.

use std::sync::Arc;

use bztree::BzTree;
use hybridskip::HybridSkipList;
use pmdkskip::PmdkSkipList;
use pmem::pool::PoolConfig;
use pmem::{LatencyModel, ObsLevel, PersistenceMode, Placement, Pool};
use upskiplist::{ListBuilder, ListConfig, UpSkipList};

/// What the benchmarks need from an index.
///
/// Every structure supports point ops (`insert`/`get`/`remove`); scans are
/// a capability (`supports_scan`), and `scan` returns `None` when the
/// structure has no range path — the driver skips rather than panics.
pub trait KvIndex: Send + Sync {
    fn name(&self) -> &'static str;
    fn insert(&self, key: u64, value: u64) -> Option<u64>;
    fn get(&self, key: u64) -> Option<u64>;
    /// Tombstone/delete `key`, returning the previous live value.
    fn remove(&self, key: u64) -> Option<u64>;
    /// Whether [`KvIndex::scan`] returns `Some` on this structure.
    fn supports_scan(&self) -> bool {
        true
    }
    /// Range scan from `from`, up to `limit` records (workload E).
    /// Returns the number of records visited, or `None` when the
    /// structure has no range path.
    fn scan(&self, from: u64, limit: usize) -> Option<usize>;
    /// Batched lookup, results in input order. The default loops
    /// [`KvIndex::get`]; structures with a native batch path override it.
    fn get_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        keys.iter().map(|&k| self.get(k)).collect()
    }
    /// Batched upsert, previous values in input order (the symmetric
    /// counterpart of [`KvIndex::get_batch`]). The default loops
    /// [`KvIndex::insert`]; structures with a native batch path override
    /// it. A batch is *not* atomic — it is equivalent to applying the
    /// pairs one at a time in input order.
    fn insert_batch(&self, pairs: &[(u64, u64)]) -> Vec<Option<u64>> {
        pairs.iter().map(|&(k, v)| self.insert(k, v)).collect()
    }
    /// Batched removal, removed values in input order. Default loops
    /// [`KvIndex::remove`]; same non-atomicity caveat as `insert_batch`.
    fn remove_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        keys.iter().map(|&k| self.remove(k)).collect()
    }
    /// Durability ack boundary: fence any flush-deferred publish lines so
    /// every operation completed so far on this thread is crash-durable
    /// (strict rather than buffered durable linearizability). Default
    /// no-op — structures that fence eagerly at the end of each op have
    /// nothing deferred.
    fn sync(&self) {}
}

impl KvIndex for UpSkipList {
    fn name(&self) -> &'static str {
        "upskiplist"
    }
    fn insert(&self, key: u64, value: u64) -> Option<u64> {
        UpSkipList::insert(self, key, value)
    }
    fn get(&self, key: u64) -> Option<u64> {
        UpSkipList::get(self, key)
    }
    fn remove(&self, key: u64) -> Option<u64> {
        UpSkipList::remove(self, key)
    }
    fn scan(&self, from: u64, limit: usize) -> Option<usize> {
        Some(UpSkipList::scan(self, from, limit).len())
    }
    fn get_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        UpSkipList::get_batch(self, keys)
    }
    fn insert_batch(&self, pairs: &[(u64, u64)]) -> Vec<Option<u64>> {
        UpSkipList::insert_batch(self, pairs)
    }
    fn remove_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        UpSkipList::remove_batch(self, keys)
    }
    fn sync(&self) {
        UpSkipList::sync(self);
    }
}

impl KvIndex for BzTree {
    fn name(&self) -> &'static str {
        "bztree"
    }
    fn insert(&self, key: u64, value: u64) -> Option<u64> {
        BzTree::insert(self, key, value)
    }
    fn get(&self, key: u64) -> Option<u64> {
        BzTree::get(self, key)
    }
    fn remove(&self, key: u64) -> Option<u64> {
        BzTree::remove(self, key)
    }
    fn scan(&self, from: u64, limit: usize) -> Option<usize> {
        Some(BzTree::scan(self, from, limit).len())
    }
}

impl KvIndex for PmdkSkipList {
    fn name(&self) -> &'static str {
        "pmdkskip"
    }
    fn insert(&self, key: u64, value: u64) -> Option<u64> {
        PmdkSkipList::insert(self, key, value)
    }
    fn get(&self, key: u64) -> Option<u64> {
        PmdkSkipList::get(self, key)
    }
    fn remove(&self, key: u64) -> Option<u64> {
        PmdkSkipList::remove(self, key)
    }
    fn scan(&self, from: u64, limit: usize) -> Option<usize> {
        Some(PmdkSkipList::scan(self, from, limit).len())
    }
}

impl KvIndex for HybridSkipList {
    fn name(&self) -> &'static str {
        "hybridskip"
    }
    fn insert(&self, key: u64, value: u64) -> Option<u64> {
        HybridSkipList::insert(self, key, value)
    }
    fn get(&self, key: u64) -> Option<u64> {
        HybridSkipList::get(self, key)
    }
    fn remove(&self, key: u64) -> Option<u64> {
        HybridSkipList::remove(self, key)
    }
    fn supports_scan(&self) -> bool {
        false
    }
    fn scan(&self, _from: u64, _limit: usize) -> Option<usize> {
        // The hybrid baseline keeps its index sharded by hash; it exists
        // for recovery experiments and has no ordered range path.
        None
    }
}

/// Deployment knobs shared by the constructors.
#[derive(Debug, Clone, Copy)]
pub struct Deployment {
    pub records: u64,
    pub tracked: bool,
    pub latency: LatencyModel,
    /// >1 ⇒ one pool per NUMA node (UPSkipList only).
    pub num_pools: u16,
    /// For single-pool deployments: stripe across this many nodes.
    pub striped_nodes: u16,
    /// Observability level for every pool the constructors build.
    pub obs: ObsLevel,
}

impl Deployment {
    pub fn simple(records: u64) -> Self {
        Self {
            records,
            tracked: false,
            latency: LatencyModel::pmem_default(),
            num_pools: 1,
            striped_nodes: 1,
            obs: ObsLevel::Off,
        }
    }

    /// [`Deployment::simple`] with pmem op counters on (metrics runs).
    pub fn counted(records: u64) -> Self {
        Self {
            obs: ObsLevel::Counters,
            ..Self::simple(records)
        }
    }
}

/// UPSkipList build options — one struct instead of a constructor per
/// knob combination. `..Default::default()` gives the evaluation's
/// defaults; experiments override the field they sweep.
#[derive(Debug, Clone, Copy)]
pub struct UpSkipListOpts {
    /// Keys per multi-key node (§5.1.2 uses 256; 1 reproduces the
    /// single-key variant of Fig 5.3).
    pub keys_per_node: usize,
    /// Sort node keys on lookup paths (crash campaigns exercise both).
    pub sorted_lookups: bool,
    /// DRAM search fingers (the traversal experiment toggles these).
    pub fingers: bool,
    /// DRAM index shadow for the upper levels (the traversal experiment
    /// toggles this against the finger-only descent).
    pub shadow: bool,
    /// Shadow entry budget across mirrored levels (0 = library default).
    pub shadow_capacity: usize,
    /// Random write-back: evict one in N dirty lines (0 = off).
    pub evict_one_in: u32,
    /// Per-thread allocator magazine capacity override. `None` keeps
    /// [`ListBuilder`]'s default (the single authoritative source);
    /// `Some(0)` forces one persisted log per pop — the allocator
    /// experiment sweeps this explicitly.
    pub magazine: Option<usize>,
}

impl Default for UpSkipListOpts {
    fn default() -> Self {
        Self {
            keys_per_node: 16,
            sorted_lookups: false,
            fingers: true,
            shadow: true,
            shadow_capacity: 0,
            evict_one_in: 0,
            magazine: None,
        }
    }
}

impl UpSkipListOpts {
    /// Convenience: defaults with a specific node size.
    pub fn keys_per_node(keys_per_node: usize) -> Self {
        Self {
            keys_per_node,
            ..Self::default()
        }
    }
}

/// UPSkipList sized for the deployment, configured by `opts`.
pub fn build_upskiplist(d: &Deployment, opts: UpSkipListOpts) -> Arc<UpSkipList> {
    build_upskiplist_at(d, opts, 0)
}

/// [`build_upskiplist`] with the (single, un-striped) pool homed on a
/// specific NUMA node — the serving layer places one shard per node.
pub fn build_upskiplist_at(
    d: &Deployment,
    opts: UpSkipListOpts,
    home_node: u16,
) -> Arc<UpSkipList> {
    let mut cfg = sized_config(d, opts.keys_per_node);
    cfg.sorted_lookups = opts.sorted_lookups;
    cfg.fingers = opts.fingers;
    cfg.shadow = opts.shadow;
    let mut b = sized_builder(d, cfg, opts.evict_one_in);
    b.home_node = home_node;
    if let Some(m) = opts.magazine {
        b.magazine = m;
    }
    let list = b.create();
    if opts.shadow_capacity > 0 {
        list.set_shadow_tuning(opts.shadow_capacity, upskiplist::DEFAULT_SHADOW_REGIONS);
    }
    list
}

/// One UPSkipList per shard, shard `i`'s pool homed on node `i % nodes`
/// and sized for an even share of the deployment's records (with slack for
/// hash-partition imbalance). The E14 serving experiment builds its
/// storage layer through this.
pub fn build_upskiplist_shards(
    d: &Deployment,
    opts: UpSkipListOpts,
    shards: u16,
    nodes: u16,
) -> Vec<Arc<UpSkipList>> {
    assert!(shards >= 1 && nodes >= 1);
    let per_shard = Deployment {
        // 1.5x the even share: fnv1a partitions uniform keys well, but
        // small shard counts still see a few percent of imbalance.
        records: (d.records * 3 / 2 / shards as u64).max(1024),
        ..*d
    };
    (0..shards)
        .map(|i| build_upskiplist_at(&per_shard, opts, i % nodes))
        .collect()
}

/// Tower height sized to the expected node count (the thesis tunes its
/// parameters per machine, §5.1.2; 32 levels over ~400 K nodes there).
fn sized_config(d: &Deployment, keys_per_node: usize) -> ListConfig {
    let nodes = (d.records * 3 / 2) / keys_per_node as u64 + 64;
    let height = (64 - u64::leading_zeros(nodes.max(2)) as usize + 2).clamp(8, 32);
    ListConfig::new(height, keys_per_node)
}

fn sized_builder(d: &Deployment, cfg: ListConfig, evict_one_in: u32) -> ListBuilder {
    let nodes = (d.records * 3 / 2) / cfg.keys_per_node as u64 + 64;
    let node_words = upskiplist::layout::node_words(&cfg).div_ceil(8) * 8;
    let blocks_per_chunk = 512.min(nodes.max(16));
    let chunk_words = blocks_per_chunk * node_words;
    // Each pool provisions whole chunks per arena, so leave headroom for
    // one round of chunks per arena on top of the node footprint.
    let per_pool = (nodes * node_words * 2) / d.num_pools as u64 + 12 * chunk_words + (1 << 20);
    ListBuilder {
        list: cfg,
        num_pools: d.num_pools,
        pool_words: per_pool,
        striped_nodes: d.striped_nodes,
        mode: if d.tracked {
            PersistenceMode::Tracked
        } else {
            PersistenceMode::Fast
        },
        latency: d.latency,
        evict_one_in,
        num_arenas: 8,
        blocks_per_chunk,
        obs: d.obs,
        check: pmem::PmCheckLevel::Off,
        // magazine (and any future allocator knob) comes from the builder's
        // own default — `UpSkipListOpts` overrides it explicitly when set.
        ..ListBuilder::default()
    }
}

/// A pool for single-pool baselines.
pub fn build_pool(d: &Deployment, words: u64) -> Arc<Pool> {
    Pool::new(
        PoolConfig {
            id: 0,
            len_words: words,
            placement: if d.striped_nodes > 1 {
                Placement::Striped {
                    nodes: d.striped_nodes,
                    stripe_words: 1 << 18,
                }
            } else {
                Placement::Node(0)
            },
            mode: if d.tracked {
                PersistenceMode::Tracked
            } else {
                PersistenceMode::Fast
            },
            latency: d.latency,
            evict_one_in: 0,
            obs: d.obs,
            check: pmem::PmCheckLevel::Off,
        },
        Arc::new(pmem::CrashController::new()),
    )
}

/// BzTree sized for the deployment (512-record leaves; splits path-copy
/// the inner nodes, so that churn is included in the sizing).
pub fn build_bztree(d: &Deployment, desc_count: usize) -> Arc<BzTree> {
    let leaf_cap = 512u64;
    let leaves = 2 * d.records / (leaf_cap / 2) + 16;
    let leaf_words = (2 + 2 * leaf_cap) * 2 * leaves; // live + leaked
                                                      // Each split copies O(fanout · depth) inner entries; superseded copies
                                                      // leak (epoch GC stand-in), so budget generously.
    let inner_words = leaves * 64 * 4 + (1 << 16);
    let desc_words = pmwcas::DescriptorPool::region_words(desc_count);
    let words = 64 + desc_words + leaf_words + inner_words + (1 << 20);
    BzTree::create(build_pool(d, words), leaf_cap, desc_count)
}

/// The lock-based PMDK-style skip list sized for the deployment.
pub fn build_pmdkskip(d: &Deployment) -> Arc<PmdkSkipList> {
    let node_words = 5 + 2 * 32 + 2; // max-height node + header
    let words = pmemtx::TxHeap::overhead_words(8) + 2 * d.records * node_words + (1 << 20);
    PmdkSkipList::create(build_pool(d, words), 32)
}

/// The DRAM-index hybrid baseline sized for the deployment. Every upsert
/// of a new key appends one 3-word node; updates are in place.
pub fn build_hybridskip(d: &Deployment) -> Arc<HybridSkipList> {
    let words = 8 + 2 * d.records * 3 + (1 << 20);
    HybridSkipList::create(build_pool(d, words))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_builders_produce_working_indexes() {
        let d = Deployment::simple(1000);
        let idx: Vec<Arc<dyn KvIndex>> = vec![
            build_upskiplist(&d, UpSkipListOpts::default()),
            build_bztree(&d, 1024),
            build_pmdkskip(&d),
            build_hybridskip(&d),
        ];
        for i in idx {
            assert_eq!(i.insert(10, 100), None, "{}", i.name());
            assert_eq!(i.get(10), Some(100), "{}", i.name());
            assert_eq!(i.insert(10, 101), Some(100), "{}", i.name());
            assert_eq!(i.remove(10), Some(101), "{}", i.name());
            assert_eq!(i.get(10), None, "{}", i.name());
            i.insert(5, 50);
            i.insert(7, 70);
            if i.supports_scan() {
                assert_eq!(i.scan(1, 10), Some(2), "{}", i.name());
            } else {
                assert_eq!(i.scan(1, 10), None, "{}", i.name());
            }
        }
    }

    #[test]
    fn opts_cover_the_old_constructor_trio() {
        let d = Deployment::counted(500);
        // sorted + eviction (old build_upskiplist_opts)
        let l = build_upskiplist(
            &d,
            UpSkipListOpts {
                keys_per_node: 16,
                sorted_lookups: true,
                evict_one_in: 4,
                ..Default::default()
            },
        );
        l.insert(1, 1);
        assert_eq!(l.get(1), Some(1));
        // fingers off + counters (old build_upskiplist_traversal)
        let l = build_upskiplist(
            &d,
            UpSkipListOpts {
                fingers: false,
                ..Default::default()
            },
        );
        l.insert(2, 2);
        assert_eq!(l.get(2), Some(2));
        assert!(l.space().stats_snapshot().reads > 0, "counters must be on");
    }
}
