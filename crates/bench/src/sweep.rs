//! E12 — systematic crash-residue sweeps with crash-during-recovery.
//!
//! The thesis's correctness argument (§6.1.2) is that every acknowledged
//! operation survives a power failure in which each dirty cache line
//! independently may or may not have reached PMEM. This module tests that
//! claim *systematically* instead of at hand-picked countdowns: for each
//! subject structure it walks a grid of
//!
//! ```text
//! crash point (every k-th pmem op)  ×  workload seed  ×  residue policy
//! ```
//!
//! states. Each state runs a deterministic single-threaded workload,
//! crashes it after exactly `crash_after` pmem operations, applies the
//! [`CrashPlan`] residue to every pool, *optionally crashes again in the
//! middle of recovery* (the nested point is derived from the tuple), then
//! recovers fully and verifies:
//!
//! * **acked durability** — every operation that returned before the crash
//!   is visible; the single in-flight operation may surface as either its
//!   pre- or post-state, nothing else;
//! * **structural invariants** — `check_invariants` (skip list), free-list
//!   soundness (pmalloc), all-or-nothing target words (pmwcas), pair
//!   atomicity (pmemtx);
//! * **recovery idempotence** — recovery is run once more after
//!   verification and must change nothing.
//!
//! A failing state prints the one-line repro tuple
//! `(crash_after, seed, policy)` after shrinking `crash_after` with
//! [`lincheck::minimize_crash_point`].

use std::cell::Cell;
use std::collections::BTreeMap;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use lincheck::{minimize_crash_point, ReproTuple};
use pmem::pool::PoolConfig;
use pmem::{
    run_crashable, CrashController, CrashPlan, EpochCrashPoint, ObsLevel, PersistenceMode,
    PmCheckLevel, Pool,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use riv::RivPtr;
use upskiplist::{ListBuilder, ListConfig, UpSkipList};

/// A structure that can be crash-swept: it owns a simulated machine (pools
/// and controller), runs a deterministic workload that records what was
/// acknowledged, recovers after a power failure, and self-verifies.
///
/// `workload` and `recover` are run under crash injection and may unwind
/// with [`pmem::Crashed`]; `recover` must be idempotent — it is invoked
/// again after nested crashes and once more after verification.
/// `verify` runs on a quiesced, recovered machine and panics on violation.
pub trait CrashSubject {
    fn controller(&self) -> Arc<CrashController>;
    fn pools(&self) -> Vec<Arc<Pool>>;
    fn workload(&mut self);
    fn recover(&mut self);
    fn verify(&mut self);
}

// ---------------------------------------------------------------------------
// Subjects
// ---------------------------------------------------------------------------

/// UPSkipList under a mixed insert/remove/read workload.
pub struct SkipListSubject {
    list: Arc<UpSkipList>,
    seed: u64,
    ops: u64,
    keyspace: u64,
    next_val: u64,
    /// Acknowledged state: key → last acked value.
    model: BTreeMap<u64, u64>,
    /// The operation in flight at the crash, if any: `(key, Some(v))` for
    /// an insert of `v`, `(key, None)` for a remove.
    inflight: Option<(u64, Option<u64>)>,
    /// `--crash-in-epoch`: arm a one-shot crash at this flush-epoch
    /// boundary once the workload reaches op index `.1` — the crash then
    /// fires inside the *next* fresh-node insert's prepare window.
    epoch_crash: Option<(EpochCrashPoint, u64)>,
}

impl SkipListSubject {
    pub fn new(seed: u64, ops: u64) -> Self {
        let list = ListBuilder {
            list: ListConfig::new(10, 8),
            pool_words: 1 << 17,
            mode: PersistenceMode::Tracked,
            num_arenas: 2,
            blocks_per_chunk: 32,
            obs: ObsLevel::Counters,
            ..Default::default()
        }
        .create();
        let mut s = Self {
            list,
            seed,
            ops,
            keyspace: 48,
            next_val: 1,
            model: BTreeMap::new(),
            inflight: None,
            epoch_crash: None,
        };
        // Prepopulate half the keyspace (acked + durable by protocol)
        // so early crash points land on updates and splits, not only on
        // first-time inserts into an empty list.
        for k in (2..=s.keyspace).step_by(4) {
            let v = s.next_val;
            s.next_val += 1;
            s.list.insert(k, v);
            s.model.insert(k, v);
        }
        // Ack boundary: the deferred publish lines of the prepopulated
        // inserts must be fenced before they count as durable-by-protocol,
        // or a DropAll crash early in the workload would shed them.
        s.list.sync();
        s
    }

    /// Arm a one-shot [`EpochCrashPoint`] once the workload reaches op
    /// index `at_op` (see [`run_epoch_point`]).
    pub fn with_epoch_crash(mut self, point: EpochCrashPoint, at_op: u64) -> Self {
        self.epoch_crash = Some((point, at_op));
        self
    }
}

impl CrashSubject for SkipListSubject {
    fn controller(&self) -> Arc<CrashController> {
        Arc::clone(self.list.space().pools()[0].crash_controller())
    }

    fn pools(&self) -> Vec<Arc<Pool>> {
        self.list.space().pools().to_vec()
    }

    fn workload(&mut self) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        for i in 0..self.ops {
            if let Some((point, at_op)) = self.epoch_crash {
                if i == at_op {
                    pmem::arm_epoch_crash(point);
                }
            }
            let key = rng.gen_range(1..=self.keyspace);
            let roll = rng.gen_range(0..100u32);
            // Mutations ack only at the `sync()` fence: the publish link
            // is flush-deferred under the fence-diet insert, so an op is
            // "acked + durable" (model-visible) only once the thread's
            // pending lines are fenced. Crashing between the CAS and the
            // sync leaves the op in-flight — either outcome verifies.
            if roll < 65 {
                let v = self.next_val;
                self.next_val += 1;
                self.inflight = Some((key, Some(v)));
                self.list.insert(key, v);
                self.list.sync();
                self.model.insert(key, v);
            } else if roll < 85 {
                self.inflight = Some((key, None));
                self.list.remove(key);
                self.list.sync();
                self.model.remove(&key);
            } else {
                let got = self.list.get(key);
                assert_eq!(
                    got,
                    self.model.get(&key).copied(),
                    "pre-crash read of key {key} disagrees with the model"
                );
            }
            self.inflight = None;
        }
    }

    fn recover(&mut self) {
        self.list.recover();
        // Eager recovery does real pmem work over every node — exactly
        // where nested crash points need to land.
        self.list.recover_eagerly();
    }

    fn verify(&mut self) {
        self.list.check_invariants();
        for key in 1..=self.keyspace {
            let got = self.list.get(key);
            let acked = self.model.get(&key).copied();
            match self.inflight {
                Some((k, post)) if k == key => assert!(
                    got == acked || got == post,
                    "key {key}: {got:?} is neither the acked {acked:?} nor \
                     the in-flight {post:?}"
                ),
                _ => assert_eq!(
                    got, acked,
                    "key {key}: acked value not durable after recovery"
                ),
            }
        }
    }
}

/// pmalloc under an alloc/free workload; verifies free-list soundness
/// (no cycles, no double links, only `KIND_FREE` blocks) after log replay.
pub struct AllocSubject {
    alloc: pmalloc::Allocator,
    seed: u64,
    ops: u64,
    epoch: u64,
    held: Vec<RivPtr>,
}

impl AllocSubject {
    pub fn new(seed: u64, ops: u64) -> Self {
        Self::build(seed, ops, pmalloc::AllocConfig::small())
    }

    /// The lease fast path under crash injection: the same workload runs
    /// through the per-thread magazine and free outbox, so evenly spread
    /// crash points land inside lease acquisition (log write, multi-pop
    /// CAS, stamping), mid-magazine (between leases), and outbox flushes.
    pub fn with_magazine(seed: u64, ops: u64) -> Self {
        Self::build(seed, ops, pmalloc::AllocConfig::small_magazine(8))
    }

    fn build(seed: u64, ops: u64, cfg: pmalloc::AllocConfig) -> Self {
        let layout = pmalloc::PoolLayout::for_config(&cfg);
        let words = layout.required_pool_words(&cfg, cfg.max_chunks as u64);
        let pool = Pool::new(PoolConfig::tracked(words), Arc::new(CrashController::new()));
        let space = Arc::new(riv::RivSpace::new(
            vec![pool],
            layout.chunk_table_off,
            cfg.max_chunks,
        ));
        let alloc = pmalloc::Allocator::new(space, cfg);
        alloc.format(1);
        Self {
            alloc,
            seed,
            ops,
            epoch: 1,
            held: Vec::new(),
        }
    }
}

impl CrashSubject for AllocSubject {
    fn controller(&self) -> Arc<CrashController> {
        Arc::clone(self.alloc.space().pools()[0].crash_controller())
    }

    fn pools(&self) -> Vec<Arc<Pool>> {
        self.alloc.space().pools().to_vec()
    }

    fn workload(&mut self) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        for i in 0..self.ops {
            if self.held.is_empty() || rng.gen_range(0..3u32) < 2 {
                let b = self
                    .alloc
                    .alloc(self.epoch, 0, RivPtr::NULL, i + 1, &pmalloc::NoNav);
                self.held.push(b);
            } else {
                let idx = rng.gen_range(0..self.held.len());
                let b = self.held.swap_remove(idx);
                // With the magazine configured this batches through the
                // outbox; with it off it is the eager free.
                self.alloc.free_deferred(self.epoch, 0, b);
            }
        }
    }

    fn recover(&mut self) {
        // Blocks held across the crash are gone (nothing references them
        // under `NoNav`); pmalloc's recovery is *lazy* — the stale log is
        // validated on the owning thread's next allocation — so drive one
        // alloc/free in the new epoch to force replay. Each retry after a
        // nested crash bumps the epoch again, exactly like a re-restart.
        // The crash also destroyed DRAM: discard magazines and outboxes
        // (their blocks are reclaimed by stale-lease validation or leak
        // within the documented bound).
        self.alloc.discard_thread_caches();
        self.held.clear();
        self.epoch += 1;
        let b = self
            .alloc
            .alloc(self.epoch, 0, RivPtr::NULL, u64::MAX, &pmalloc::NoNav);
        self.alloc.free(self.epoch, 0, b);
    }

    fn verify(&mut self) {
        // Return any magazine/outbox blocks the recovery allocs parked in
        // DRAM so the free-list walk (and the listed-block assertion on the
        // probe alloc below) sees every reachable block.
        self.alloc.drain_thread_cache(self.epoch);
        // Walk every arena free list by hand: bounded, acyclic, no block
        // linked twice (a double link would hand one block to two callers),
        // and every listed block marked KIND_FREE.
        let cfg = self.alloc.config();
        let layout = self.alloc.layout();
        let space = self.alloc.space();
        let pool = &space.pools()[0];
        let capacity = self.alloc.chunks_provisioned(0) * cfg.blocks_per_chunk;
        let mut seen = std::collections::HashSet::new();
        for arena in 0..cfg.num_arenas {
            let mut cur = RivPtr::from_raw(pool.read(layout.arena_head(arena)));
            let mut walked = 0u64;
            while !cur.is_null() {
                walked += 1;
                assert!(
                    walked <= capacity + 1,
                    "arena {arena}: free list longer than every block ever \
                     carved — cycle or duplicate link"
                );
                assert!(
                    seen.insert(cur.raw()),
                    "block {cur:?} linked into two free lists"
                );
                assert_eq!(
                    space.read(cur.add(pmalloc::BLK_KIND as u32)),
                    pmalloc::KIND_FREE,
                    "non-free block {cur:?} sitting in arena {arena}'s list"
                );
                cur = RivPtr::from_raw(space.read(cur.add(pmalloc::BLK_NEXT_FREE as u32)));
            }
            assert!(walked >= 1, "arena {arena} lost its terminal block");
        }
        assert!(
            (seen.len() as u64) <= capacity,
            "more free blocks than were ever carved"
        );
        // The allocator must still be usable: a fresh alloc comes off a
        // free list and can be returned.
        let b = self
            .alloc
            .alloc(self.epoch, 0, RivPtr::NULL, u64::MAX - 1, &pmalloc::NoNav);
        assert!(seen.contains(&b.raw()), "alloc returned an unlisted block");
        self.alloc.free(self.epoch, 0, b);
    }
}

/// pmwcas over two target words; verifies all-or-nothing visibility of the
/// acked history after descriptor recovery.
pub struct PmwcasSubject {
    dp: pmwcas::DescriptorPool,
    seed: u64,
    ops: u64,
    next_val: u64,
    /// Acked values of the two target words.
    model: (u64, u64),
    inflight: Option<(u64, u64)>,
}

const MW_A: u64 = 100;
const MW_B: u64 = 200;

impl PmwcasSubject {
    pub fn new(seed: u64, ops: u64) -> Self {
        let pool = Pool::new(
            PoolConfig::tracked(1 << 14),
            Arc::new(CrashController::new()),
        );
        let dp = pmwcas::DescriptorPool::new(Arc::clone(&pool), 4096, 8);
        pool.write(MW_A, 1);
        pool.write(MW_B, 2);
        pool.mark_all_persisted();
        Self {
            dp,
            seed,
            ops,
            next_val: 10,
            model: (1, 2),
            inflight: None,
        }
    }
}

impl CrashSubject for PmwcasSubject {
    fn controller(&self) -> Arc<CrashController> {
        Arc::clone(self.dp.pool().crash_controller())
    }

    fn pools(&self) -> Vec<Arc<Pool>> {
        vec![Arc::clone(self.dp.pool())]
    }

    fn workload(&mut self) {
        // The seed varies the op count parity and value stream so different
        // seeds crash inside different descriptor phases.
        let mut rng = StdRng::seed_from_u64(self.seed);
        for _ in 0..self.ops {
            let (a, b) = self.model;
            let na = self.next_val + rng.gen_range(0..3u64);
            let nb = na + 1;
            self.next_val = nb + 1;
            self.inflight = Some((na, nb));
            let ok = self.dp.pmwcas(&[(MW_A, a, na), (MW_B, b, nb)]);
            assert!(ok, "single-threaded pmwcas with correct olds must win");
            self.model = (na, nb);
            self.inflight = None;
        }
    }

    fn recover(&mut self) {
        self.dp.recover();
    }

    fn verify(&mut self) {
        let a = self.dp.read(MW_A);
        let b = self.dp.read(MW_B);
        let acked_ok = (a, b) == self.model;
        let inflight_ok = self.inflight.is_some_and(|nv| (a, b) == nv);
        assert!(
            acked_ok || inflight_ok,
            "torn pmwcas state after recovery: read {:?}, acked {:?}, \
             in-flight {:?}",
            (a, b),
            self.model,
            self.inflight
        );
    }
}

/// pmemtx transactions writing two-word pairs; verifies pair atomicity and
/// acked durability after undo-log rollback.
pub struct TxSubject {
    heap: pmemtx::TxHeap,
    obj: u64,
    seed: u64,
    ops: u64,
    next_val: u64,
    model: [u64; TX_PAIRS],
    inflight: Option<(usize, u64)>,
}

const TX_PAIRS: usize = 4;

impl TxSubject {
    pub fn new(seed: u64, ops: u64) -> Self {
        let words = pmemtx::TxHeap::overhead_words(8) + (1 << 12);
        let pool = Pool::new(PoolConfig::tracked(words), Arc::new(CrashController::new()));
        let heap = pmemtx::TxHeap::new(pool, 8);
        heap.format();
        let mut tx = heap.begin();
        let obj = tx.alloc(2 * TX_PAIRS as u64);
        for i in 0..TX_PAIRS as u64 {
            tx.set(obj + 2 * i, i + 1);
            tx.set(obj + 2 * i + 1, i + 1);
        }
        tx.commit();
        heap.pool().mark_all_persisted();
        Self {
            heap,
            obj,
            seed,
            ops,
            next_val: 100,
            model: [1, 2, 3, 4],
            inflight: None,
        }
    }
}

impl CrashSubject for TxSubject {
    fn controller(&self) -> Arc<CrashController> {
        Arc::clone(self.heap.pool().crash_controller())
    }

    fn pools(&self) -> Vec<Arc<Pool>> {
        vec![Arc::clone(self.heap.pool())]
    }

    fn workload(&mut self) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        for _ in 0..self.ops {
            let pair = rng.gen_range(0..TX_PAIRS);
            let v = self.next_val;
            self.next_val += 1;
            self.inflight = Some((pair, v));
            let mut tx = self.heap.begin();
            tx.set(self.obj + 2 * pair as u64, v);
            tx.set(self.obj + 2 * pair as u64 + 1, v);
            tx.commit();
            self.model[pair] = v;
            self.inflight = None;
        }
    }

    fn recover(&mut self) {
        self.heap.recover();
    }

    fn verify(&mut self) {
        for (i, &acked) in self.model.iter().enumerate() {
            let x = self.heap.read(self.obj + 2 * i as u64);
            let y = self.heap.read(self.obj + 2 * i as u64 + 1);
            assert_eq!(
                x, y,
                "pair {i} torn after recovery: ({x}, {y}) — undo log failed"
            );
            let inflight_ok = self.inflight.is_some_and(|(p, v)| p == i && x == v);
            assert!(
                x == acked || inflight_ok,
                "pair {i}: {x} is neither acked {acked} nor in-flight \
                 {:?}",
                self.inflight
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// splitmix64 finalizer — derives the nested crash-during-recovery point
/// deterministically from the repro tuple.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Outcome of one stage run under crash injection.
enum Stage {
    Completed,
    Crashed,
}

/// Run `f` converting a `Crashed` unwind into [`Stage::Crashed`] (with the
/// thread's pending flushes handed off to the unfenced registry) and any
/// other panic into `Err` with its message — a sweep records failures and
/// moves on instead of aborting.
fn stage(f: impl FnOnce()) -> Result<Stage, String> {
    match std::panic::catch_unwind(AssertUnwindSafe(|| run_crashable(f))) {
        Ok(Ok(())) => Ok(Stage::Completed),
        Ok(Err(_)) => Ok(Stage::Crashed),
        Err(payload) => Err(payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic".to_string())),
    }
}

/// Power-fail every pool with `plan` and reset the driver thread's own
/// pending list (its unfenced lines were already counted as residue).
fn power_fail<S: CrashSubject>(s: &S, plan: CrashPlan) {
    for pool in s.pools() {
        pool.simulate_crash_with(plan);
    }
    pmem::discard_pending();
}

thread_local! {
    /// Advisory pmcheck findings (PMD02/PMD03) tallied by `run_point` on
    /// this driver thread; drained into [`SweepOutcome::advisories`].
    static ADVISORIES: Cell<u64> = const { Cell::new(0) };
}

/// Run one sweep state to completion. Returns `Err(reason)` on any
/// verification failure or unexpected panic.
///
/// With `pmcheck` the dynamic persist-ordering detector runs in
/// [`PmCheckLevel::Track`] over the whole state — workload, injected
/// crashes, nested recovery, verification — and its findings are drained
/// at the end regardless of how the state finished, so every PMD01 is
/// cross-checked against the injected-crash verdict for the *same* state:
/// a violation alongside a verify failure confirms the detector caught the
/// cause; a violation on a passing state is a latent ordering bug that the
/// sampled residue happened not to expose. Both fail the state. Advisory
/// findings (redundant fences, reads of never-durable residue) are only
/// tallied.
pub fn run_point<S: CrashSubject>(
    mk: &dyn Fn(u64) -> S,
    crash_after: u64,
    seed: u64,
    plan: CrashPlan,
    nested: bool,
    pmcheck: bool,
) -> Result<(), String> {
    let mut s = mk(seed);
    if pmcheck {
        pmem::check::reset_thread();
        for pool in s.pools() {
            pool.set_check_level(PmCheckLevel::Track);
        }
    }
    let result = drive_point(&mut s, crash_after, seed, plan, nested);
    if !pmcheck {
        return result;
    }
    let mut violations = Vec::new();
    let mut advisories = 0u64;
    for pool in s.pools() {
        for f in pool.take_check_findings() {
            if f.rule.is_violation() {
                violations.push(f.to_string());
            } else {
                advisories += 1;
            }
        }
    }
    ADVISORIES.with(|a| a.set(a.get() + advisories));
    if violations.is_empty() {
        return result;
    }
    let list = violations.join("; ");
    Err(match result {
        Err(e) => format!("{e} [pmcheck confirms: {list}]"),
        Ok(()) => format!(
            "pmcheck: {} ordering violation(s) on a state that verified clean \
             (latent bug the sampled residue missed): {list}",
            violations.len()
        ),
    })
}

fn drive_point<S: CrashSubject>(
    s: &mut S,
    crash_after: u64,
    seed: u64,
    plan: CrashPlan,
    nested: bool,
) -> Result<(), String> {
    let ctl = s.controller();

    ctl.arm_after(crash_after);
    let first = stage(|| s.workload()).map_err(|e| format!("workload: {e}"))?;
    ctl.disarm();
    power_fail(s, plan);

    if nested {
        // Crash again *inside* recovery, at a point derived from the tuple,
        // then power-fail with the same residue policy. Recovery must be
        // idempotent: the retry below has to finish the job.
        let j = 1 + mix64(seed ^ crash_after.wrapping_mul(0x9e37)) % 400;
        ctl.arm_after(j);
        let r = stage(|| s.recover()).map_err(|e| format!("nested recovery: {e}"))?;
        ctl.disarm();
        if matches!(r, Stage::Crashed) {
            power_fail(s, plan);
        }
    }

    match stage(|| s.recover()).map_err(|e| format!("recovery: {e}"))? {
        Stage::Completed => {}
        Stage::Crashed => return Err("recovery crashed with the controller disarmed".into()),
    }
    stage(|| s.verify()).map_err(|e| format!("verify: {e}"))?;

    // Recovery idempotence: recovering an already-recovered machine must
    // not disturb the verified state.
    stage(|| s.recover()).map_err(|e| format!("re-recovery: {e}"))?;
    stage(|| s.verify()).map_err(|e| format!("verify after re-recovery: {e}"))?;

    let _ = first;
    Ok(())
}

/// One `--crash-in-epoch` state: run the skip-list workload with a
/// one-shot [`EpochCrashPoint`] armed at op index `arm_at` (the countdown
/// controller stays disarmed), so the next fresh-node insert dies either
/// mid-prepare (`PreSweep`: CLWBs issued, *nothing* durable by fence) or
/// between the coalesced sweep and the publish CAS (`PostSweep`: the
/// prepared node durable but unpublished). Either way the crash lands
/// before the publish, so recovery must surface no trace of the op:
/// every key reads exactly its acked value — the prepared node is
/// unreachable — invariants hold, and a post-recovery probe insert proves
/// the allocator reclaimed the prepared node's lease and still serves.
/// Returns whether the armed point actually fired (`false` when no
/// fresh-node insert followed `arm_at`).
pub fn run_epoch_point(
    seed: u64,
    ops: u64,
    arm_at: u64,
    point: EpochCrashPoint,
    plan: CrashPlan,
) -> Result<bool, String> {
    let mut s = SkipListSubject::new(seed, ops).with_epoch_crash(point, arm_at);
    let first = stage(|| s.workload()).map_err(|e| format!("workload: {e}"))?;
    pmem::disarm_epoch_crash();
    let fired = matches!(first, Stage::Crashed);
    power_fail(&s, plan);

    // The crash (when it fired) died before the publish CAS: drop the
    // usual in-flight tolerance — the op's post-state must NOT be visible.
    s.inflight = None;

    match stage(|| s.recover()).map_err(|e| format!("recovery: {e}"))? {
        Stage::Completed => {}
        Stage::Crashed => return Err("recovery crashed with nothing armed".into()),
    }
    stage(|| s.verify()).map_err(|e| format!("verify: {e}"))?;

    // Reclamation probe: a fresh insert must come out of the recovered
    // allocator and be durably readable — the prepared-but-unpublished
    // node did not wedge a lease or corrupt a free list.
    stage(|| {
        let key = 1 + seed % s.keyspace;
        let v = s.next_val;
        s.next_val += 1;
        s.list.insert(key, v);
        s.list.sync();
        s.model.insert(key, v);
        assert_eq!(s.list.get(key), Some(v), "probe insert not visible");
    })
    .map_err(|e| format!("post-recovery probe: {e}"))?;

    stage(|| s.recover()).map_err(|e| format!("re-recovery: {e}"))?;
    stage(|| s.verify()).map_err(|e| format!("verify after re-recovery: {e}"))?;
    Ok(fired)
}

/// Measure how many pmem operations `mk(seed)`'s workload performs by
/// arming far beyond it and reading back the unconsumed budget.
pub fn calibrate<S: CrashSubject>(mk: &dyn Fn(u64) -> S, seed: u64) -> u64 {
    const BIG: u64 = 1 << 40;
    let mut s = mk(seed);
    let ctl = s.controller();
    ctl.arm_after(BIG);
    s.workload();
    let left = ctl
        .armed_remaining()
        .expect("calibration must not trip the controller");
    ctl.disarm();
    pmem::sfence();
    BIG - left
}

/// Sweep configuration: crash points are spread evenly over the measured
/// workload length, per seed.
pub struct SweepConfig {
    pub points: usize,
    pub seeds: Vec<u64>,
    pub plans: Vec<CrashPlan>,
    pub nested: bool,
    /// Workload operations per state.
    pub ops: u64,
    /// Run the dynamic persist-ordering detector (`PmCheckLevel::Track`)
    /// over every state; PMD01 violations fail the state, advisories are
    /// tallied into [`SweepOutcome::advisories`].
    pub pmcheck: bool,
}

/// Result of sweeping one subject.
pub struct SweepOutcome {
    pub name: &'static str,
    /// Distinct (crash-point × seed × policy) states explored.
    pub states: u64,
    /// States whose armed crash actually fired. Equals `states` for
    /// countdown sweeps (crash points are calibrated inside the workload);
    /// for epoch-boundary sweeps a state can arm past the last fresh-node
    /// insert and complete uncrashed.
    pub fired: u64,
    /// One repro line per failing state (already minimized).
    pub failures: Vec<String>,
    /// Advisory pmcheck findings (PMD02 redundant fences, PMD03 reads of
    /// never-durable residue) across all states; zero with pmcheck off.
    pub advisories: u64,
}

/// Walk the full grid for one subject; failing states are minimized and
/// reported as `(crash_after, seed, policy)` repro tuples.
pub fn sweep<S: CrashSubject>(
    name: &'static str,
    mk: &dyn Fn(u64) -> S,
    cfg: &SweepConfig,
) -> SweepOutcome {
    let mut out = SweepOutcome {
        name,
        states: 0,
        fired: 0,
        failures: Vec::new(),
        advisories: 0,
    };
    ADVISORIES.with(|a| a.set(0));
    for &seed in &cfg.seeds {
        let total = calibrate(mk, seed);
        let step = (total / (cfg.points as u64 + 1)).max(1);
        for i in 1..=cfg.points as u64 {
            let crash_after = step * i;
            for &plan in &cfg.plans {
                out.states += 1;
                if let Err(msg) = run_point(mk, crash_after, seed, plan, cfg.nested, cfg.pmcheck) {
                    let min = minimize_crash_point(
                        |k| run_point(mk, k, seed, plan, cfg.nested, cfg.pmcheck).is_err(),
                        crash_after,
                    );
                    let repro = ReproTuple {
                        crash_after: min,
                        seed,
                        policy: plan,
                    };
                    let line = format!("{name}: FAIL {repro}: {msg}");
                    eprintln!("{line}");
                    out.failures.push(line);
                }
            }
        }
    }
    out.advisories = ADVISORIES.with(|a| a.take());
    out.fired = out.states;
    out
}

/// Walk the `--crash-in-epoch` grid for the skip-list subject:
/// arm-op position × seed × residue policy × {`PreSweep`, `PostSweep`}.
/// Fresh-node inserts are a fraction of the mixed workload, so a state
/// whose arm point lands after the last one simply completes — the
/// outcome's `fired` counts how many states actually crashed at an epoch
/// boundary (callers asserting coverage should check it is non-zero).
pub fn sweep_epoch_points(cfg: &SweepConfig) -> SweepOutcome {
    let mut out = SweepOutcome {
        name: "upskiplist-epoch",
        states: 0,
        fired: 0,
        failures: Vec::new(),
        advisories: 0,
    };
    let step = (cfg.ops / (cfg.points as u64 + 1)).max(1);
    for &seed in &cfg.seeds {
        for i in 0..cfg.points as u64 {
            // Include 0 so one position crashes the first fresh-node
            // insert of the workload.
            let arm_at = step * i;
            for point in [EpochCrashPoint::PreSweep, EpochCrashPoint::PostSweep] {
                for &plan in &cfg.plans {
                    out.states += 1;
                    match run_epoch_point(seed, cfg.ops, arm_at, point, plan) {
                        Ok(true) => out.fired += 1,
                        Ok(false) => {}
                        Err(msg) => {
                            let line = format!(
                                "upskiplist-epoch: FAIL (arm_at={arm_at}, seed={seed}, \
                                 point={point:?}, policy={plan:?}): {msg}"
                            );
                            eprintln!("{line}");
                            out.failures.push(line);
                        }
                    }
                }
            }
        }
    }
    out
}

/// The standard residue-policy set: both deterministic extremes, the
/// unfenced frontier, and `extra_seeds` seeded coins.
pub fn standard_plans(extra_seeds: u64) -> Vec<CrashPlan> {
    let mut plans = vec![
        CrashPlan::DropAll,
        CrashPlan::KeepAll,
        CrashPlan::KeepUnfencedOnly,
    ];
    for s in 0..extra_seeds {
        plans.push(CrashPlan::Seeded(0xE12_0000 + s));
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SweepConfig {
        SweepConfig {
            points: 3,
            seeds: vec![1],
            plans: standard_plans(1),
            nested: true,
            ops: 24,
            pmcheck: false,
        }
    }

    #[test]
    fn skiplist_sweep_smoke() {
        pmem::crash::silence_crash_panics();
        let cfg = quick();
        let ops = cfg.ops;
        let out = sweep("upskiplist", &|seed| SkipListSubject::new(seed, ops), &cfg);
        assert_eq!(out.states, 12);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
    }

    /// `--crash-in-epoch` smoke: both epoch boundaries, every residue
    /// policy. At least one state must actually fire its point (arm_at=0
    /// catches the first fresh-node insert), or the sweep proves nothing.
    #[test]
    fn skiplist_epoch_crash_sweep_smoke() {
        pmem::crash::silence_crash_panics();
        let cfg = quick();
        let out = sweep_epoch_points(&cfg);
        assert_eq!(out.states, 24); // 3 arm points × 2 boundaries × 4 plans
        assert!(out.fired > 0, "no epoch crash point ever fired");
        assert!(out.failures.is_empty(), "{:?}", out.failures);
    }

    #[test]
    fn pmalloc_sweep_smoke() {
        pmem::crash::silence_crash_panics();
        let cfg = quick();
        let ops = cfg.ops;
        let out = sweep("pmalloc", &|seed| AllocSubject::new(seed, ops), &cfg);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
    }

    #[test]
    fn pmalloc_magazine_sweep_smoke() {
        pmem::crash::silence_crash_panics();
        let cfg = quick();
        let ops = cfg.ops;
        let out = sweep(
            "pmalloc-mag",
            &|seed| AllocSubject::with_magazine(seed, ops),
            &cfg,
        );
        assert!(out.failures.is_empty(), "{:?}", out.failures);
    }

    #[test]
    fn pmwcas_sweep_smoke() {
        pmem::crash::silence_crash_panics();
        let cfg = quick();
        let out = sweep("pmwcas", &|seed| PmwcasSubject::new(seed, 12), &cfg);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
    }

    #[test]
    fn pmemtx_sweep_smoke() {
        pmem::crash::silence_crash_panics();
        let cfg = quick();
        let out = sweep("pmemtx", &|seed| TxSubject::new(seed, 12), &cfg);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
    }

    /// Every subject must sweep violation-free with the dynamic detector
    /// armed: a PMD01 here is a real write→publish ordering bug (or a
    /// detector false positive) in the swept crate.
    #[test]
    fn all_subjects_sweep_clean_under_pmcheck() {
        pmem::crash::silence_crash_panics();
        let mut cfg = quick();
        cfg.pmcheck = true;
        let ops = cfg.ops;
        let outs = [
            sweep("upskiplist", &|seed| SkipListSubject::new(seed, ops), &cfg),
            sweep("pmalloc", &|seed| AllocSubject::new(seed, ops), &cfg),
            sweep(
                "pmalloc-mag",
                &|seed| AllocSubject::with_magazine(seed, ops),
                &cfg,
            ),
            sweep("pmwcas", &|seed| PmwcasSubject::new(seed, 12), &cfg),
            sweep("pmemtx", &|seed| TxSubject::new(seed, 12), &cfg),
        ];
        for out in &outs {
            assert!(
                out.failures.is_empty(),
                "{} under pmcheck: {:?}",
                out.name,
                out.failures
            );
        }
    }
}
