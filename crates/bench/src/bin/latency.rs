//! E5 — Figures 5.5/5.6 and Table 5.3: per-operation latency percentiles
//! for each YCSB workload and structure, at a fixed thread count (the
//! thesis uses 80 threads on 80 cores; scale with `--threads`).
//!
//! Emits CSV: `workload,structure,op,p50,p90,p99,p99.9,p99.99,max` (µs).

use std::sync::Arc;

use bench::{
    build_bztree, build_pmdkskip, build_upskiplist, percentile, Args, Deployment, KvIndex,
    UpSkipListOpts,
};
use ycsb::workload_by_name;

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

fn main() {
    let args = Args::parse();
    let records = args.u64("records", 200_000);
    let ops = args.u64("ops", 400_000);
    let threads = args.usize(
        "threads",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(8),
    );
    let workloads = args.list("workloads", "A,B,C,D");
    let structures = args.list("structures", "upskiplist,bztree,pmdkskip");
    let desc_count = args.usize("descriptors", 500_000.min(records as usize));

    println!("workload,structure,op,p50,p90,p99,p99.9,p99.99,max");
    for wname in &workloads {
        let spec = workload_by_name(wname).unwrap_or_else(|| panic!("unknown workload {wname}"));
        let w = ycsb::generate(spec, records, ops, threads, 42);
        for s in &structures {
            let d = Deployment::simple(records);
            let (name, index): (&'static str, Arc<dyn KvIndex>) = match s.as_str() {
                "upskiplist" => (
                    "upskiplist",
                    build_upskiplist(&d, UpSkipListOpts::keys_per_node(256)),
                ),
                "bztree" => ("bztree", build_bztree(&d, desc_count)),
                "pmdkskip" => ("pmdkskip", build_pmdkskip(&d)),
                other => panic!("unknown structure {other}"),
            };
            bench::load(&index, &w, threads.max(4), 1);
            let _ = bench::run(&index, &w, 1, false, "warmup");
            let r = bench::run(&index, &w, 1, true, name);
            for (op, lat) in [
                ("read", &r.read_latencies),
                ("update", &r.update_latencies),
                ("insert", &r.insert_latencies),
            ] {
                if lat.is_empty() {
                    continue;
                }
                println!(
                    "{},{},{},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2}",
                    spec.name,
                    name,
                    op,
                    us(percentile(lat, 50.0)),
                    us(percentile(lat, 90.0)),
                    us(percentile(lat, 99.0)),
                    us(percentile(lat, 99.9)),
                    us(percentile(lat, 99.99)),
                    us(*lat.last().unwrap()),
                );
            }
        }
    }
}
