//! E4 — Figure 5.4 and Table 5.2: UPSkipList on a single pool striped
//! across NUMA nodes vs one pool per node (extended-RIV NUMA awareness).
//!
//! The simulated latency model charges a penalty for remote-node accesses
//! in both deployments; the multi-pool run additionally pays the two-stage
//! pointer lookup and per-node allocation. The thesis measures multi-pool
//! at ≈5.6% below striped across workloads A–D.
//!
//! Emits CSV: `workload,deployment,threads,mops` plus a reduction table.

use std::collections::HashMap;
use std::sync::Arc;

use bench::{build_upskiplist, Args, Deployment, KvIndex, UpSkipListOpts};
use pmem::LatencyModel;
use ycsb::workload_by_name;

fn main() {
    let args = Args::parse();
    let records = args.u64("records", 100_000);
    let ops = args.u64("ops", 200_000);
    let nodes: u16 = args.u64("nodes", 4) as u16;
    let threads = args.usize_list("threads", "8");
    let workloads = args.list("workloads", "A,B,C,D");

    let mut results: HashMap<(String, &'static str), f64> = HashMap::new();
    println!("workload,deployment,threads,mops");
    for wname in &workloads {
        let spec = workload_by_name(wname).unwrap_or_else(|| panic!("unknown workload {wname}"));
        for t in &threads {
            let w = ycsb::generate(spec, records, ops, *t, 42);
            for (deployment, num_pools, striped) in
                [("striped", 1u16, nodes), ("multi_pool", nodes, 1u16)]
            {
                let d = Deployment {
                    latency: LatencyModel::numa_default(),
                    num_pools,
                    striped_nodes: striped,
                    ..Deployment::simple(records)
                };
                let index: Arc<dyn KvIndex> =
                    build_upskiplist(&d, UpSkipListOpts::keys_per_node(256));
                bench::load(&index, &w, (*t).max(4), nodes);
                let _ = bench::run(&index, &w, nodes, false, "warmup");
                // Median of three timed runs: single runs are noisy on
                // shared/oversubscribed hosts.
                let mut mops: Vec<f64> = (0..3)
                    .map(|_| bench::run(&index, &w, nodes, false, deployment).mops())
                    .collect();
                mops.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let med = mops[1];
                println!("{},{},{},{:.4}", spec.name, deployment, t, med);
                results.insert((wname.clone(), deployment), med);
            }
        }
    }
    // Table 5.2: throughput reduction of multi-pool vs striped.
    println!();
    println!("workload,reduction_pct");
    let mut total = 0.0;
    let mut n = 0;
    for wname in &workloads {
        if let (Some(s), Some(m)) = (
            results.get(&(wname.clone(), "striped")),
            results.get(&(wname.clone(), "multi_pool")),
        ) {
            let red = (1.0 - m / s) * 100.0;
            println!("{wname},{red:.1}");
            total += red;
            n += 1;
        }
    }
    if n > 0 {
        println!("average,{:.1}", total / n as f64);
    }
}
