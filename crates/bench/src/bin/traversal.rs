//! E10 — traversal fast path: per-thread search fingers and batched reads
//! vs the seed head-descent, measured by throughput *and* by pmem reads
//! per operation (the pool stats counters are the simulator's ground truth
//! for how many PMEM words a descent touches).
//!
//! ```text
//! cargo run --release -p bench --bin traversal -- \
//!     --records 100000 --ops 200000 --threads 1,4 --batch 32 \
//!     --json results/BENCH_traversal.json
//! ```
//! Emits CSV: `variant,threads,batch,mops,pmem_reads_per_op`; `--json`
//! additionally writes the same rows as a machine-readable report, and
//! `--metrics PATH` writes a standardized [`MetricsReport`] including the
//! structure counters (finger hit rate, hops per traversal).

use bench::metrics::{push_struct_rows, write_report};
use bench::{Args, Deployment, UpSkipListOpts};
use obs::report::MetricsReport;
use obs::ObsLevel;
use upskiplist::{StructMetricsSnapshot, UpSkipList};
use ycsb::{Distribution, WorkloadSpec};

/// Read-only uniform workload: every key equally likely, so finger hits
/// come only from batch sorting and locality, not from skew.
const UNIFORM_READS: WorkloadSpec = WorkloadSpec {
    name: "C-uniform",
    read_pct: 100,
    update_pct: 0,
    insert_pct: 0,
    scan_pct: 0,
    rmw_pct: 0,
    distribution: Distribution::Uniform,
};

fn pmem_reads(list: &UpSkipList) -> u64 {
    list.space()
        .pools()
        .iter()
        .map(|p| p.stats().snapshot().reads)
        .sum()
}

struct Row {
    variant: &'static str,
    threads: usize,
    batch: usize,
    mops: f64,
    reads_per_op: f64,
    structure: StructMetricsSnapshot,
}

fn measure(
    variant: &'static str,
    fingers: bool,
    batch: usize,
    records: u64,
    ops: u64,
    threads: usize,
    keys_per_node: usize,
) -> Row {
    let d = Deployment {
        obs: ObsLevel::Counters,
        ..Deployment::simple(records)
    };
    let index = bench::build_upskiplist(
        &d,
        UpSkipListOpts {
            keys_per_node,
            fingers,
            ..Default::default()
        },
    );
    let w = ycsb::generate(UNIFORM_READS, records, ops, threads, 42);
    bench::load(&index, &w, threads.max(4), 1);
    // Warm-up pass, then snapshot the counters around the measured run so
    // load/warm-up traffic is excluded.
    let _ = bench::run(&index, &w, 1, false, "warmup");
    let before = pmem_reads(&index);
    let sbefore = index.struct_metrics();
    let r = if batch > 1 {
        bench::run_batched(&index, &w, 1, batch, variant)
    } else {
        bench::run(&index, &w, 1, false, variant)
    };
    let after = pmem_reads(&index);
    Row {
        variant,
        threads,
        batch,
        mops: r.mops(),
        reads_per_op: (after - before) as f64 / r.ops as f64,
        structure: index.struct_metrics().since(&sbefore),
    }
}

fn main() {
    let args = Args::parse();
    let records = args.u64("records", 100_000);
    let ops = args.u64("ops", 200_000);
    let threads = if args.get("threads").is_some() {
        args.usize_list("threads", "")
    } else {
        vec![1, 4]
    };
    let batches = args.usize_list("batch", "8,32,128");
    let keys_per_node = args.usize("keys-per-node", 256);

    let mut variants: Vec<(&'static str, bool, usize)> =
        vec![("seed", false, 1), ("fingered", true, 1)];
    for &b in &batches {
        variants.push(("batched", true, b.max(2)));
    }
    let mut rows = Vec::new();
    println!("variant,threads,batch,mops,pmem_reads_per_op");
    for &t in &threads {
        for &(variant, fingers, b) in &variants {
            let row = measure(variant, fingers, b, records, ops, t, keys_per_node);
            println!(
                "{},{},{},{:.4},{:.2}",
                row.variant, row.threads, row.batch, row.mops, row.reads_per_op
            );
            rows.push(row);
        }
    }

    if let Some(path) = args.get("json") {
        let mut out = String::from("{\n");
        out.push_str("  \"experiment\": \"traversal\",\n");
        out.push_str(&format!("  \"records\": {records},\n"));
        out.push_str(&format!("  \"ops\": {ops},\n"));
        out.push_str(&format!("  \"keys_per_node\": {keys_per_node},\n"));
        out.push_str("  \"results\": [\n");
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"variant\": \"{}\", \"threads\": {}, \"batch\": {}, \"mops\": {:.4}, \"pmem_reads_per_op\": {:.2}}}{}\n",
                r.variant,
                r.threads,
                r.batch,
                r.mops,
                r.reads_per_op,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(path, out).expect("write json report");
        eprintln!("wrote {path}");
    }

    if let Some(path) = args.get("metrics") {
        let mut report = MetricsReport::new("traversal");
        report.meta("records", records);
        report.meta("ops", ops);
        report.meta("keys_per_node", keys_per_node);
        for r in &rows {
            let label = format!("upskiplist[{},t{},b{}]", r.variant, r.threads, r.batch);
            report.push(&label, "get", "mops", r.mops);
            report.push(&label, "get", "reads_per_op", r.reads_per_op);
            push_struct_rows(&mut report, &label, &r.structure);
        }
        write_report(&report, path);
    }

    // The whole point of the fast path: fingered + batched descents must
    // touch fewer PMEM words per read than the seed head-descent. Compare
    // at the last thread count, largest batch.
    let seed = rows.iter().rev().find(|r| r.variant == "seed").unwrap();
    let batched = rows.iter().rev().find(|r| r.variant == "batched").unwrap();
    eprintln!(
        "reads/op: seed {:.2} -> batched {:.2} ({:.1}% of seed)",
        seed.reads_per_op,
        batched.reads_per_op,
        100.0 * batched.reads_per_op / seed.reads_per_op
    );
}
