//! E10 — traversal fast path: per-thread search fingers, the DRAM index
//! shadow, and batched reads vs the seed head-descent, measured by
//! throughput *and* by pmem reads per operation (the pool stats counters
//! are the simulator's ground truth for how many PMEM words a descent
//! touches).
//!
//! ```text
//! cargo run --release -p bench --bin traversal -- \
//!     --keys 100000,1000000 --ops 200000 --threads 1 --batch 32,128 \
//!     --json results/BENCH_traversal.json
//! ```
//! Emits CSV: `variant,records,threads,batch,shadow,mops,pmem_reads_per_op`;
//! `--json` additionally writes the same rows as a machine-readable report,
//! and `--metrics PATH` writes a standardized [`MetricsReport`] including
//! the structure counters (finger hit rate, shadow hit rate, hops per
//! traversal). `--gate` exits non-zero unless the shadow descent cuts
//! reads/op by at least 25% vs the shadow-off batched descent at the
//! largest key count and batch size (the CI smoke regression check).

use bench::metrics::{push_struct_rows, write_report};
use bench::{Args, Deployment, UpSkipListOpts};
use obs::report::MetricsReport;
use obs::ObsLevel;
use upskiplist::{StructMetricsSnapshot, UpSkipList};
use ycsb::{Distribution, WorkloadSpec};

/// Read-only uniform workload: every key equally likely, so finger and
/// shadow hits come only from batch sorting and locality, not from skew.
const UNIFORM_READS: WorkloadSpec = WorkloadSpec {
    name: "C-uniform",
    read_pct: 100,
    update_pct: 0,
    insert_pct: 0,
    scan_pct: 0,
    rmw_pct: 0,
    distribution: Distribution::Uniform,
};

fn pmem_reads(list: &UpSkipList) -> u64 {
    list.space()
        .pools()
        .iter()
        .map(|p| p.stats().snapshot().reads)
        .sum()
}

struct Row {
    variant: &'static str,
    records: u64,
    threads: usize,
    batch: usize,
    shadow: bool,
    mops: f64,
    reads_per_op: f64,
    structure: StructMetricsSnapshot,
}

#[allow(clippy::too_many_arguments)]
fn measure(
    variant: &'static str,
    fingers: bool,
    shadow: bool,
    batch: usize,
    records: u64,
    ops: u64,
    threads: usize,
    keys_per_node: usize,
) -> Row {
    let d = Deployment {
        obs: ObsLevel::Counters,
        ..Deployment::simple(records)
    };
    let index = bench::build_upskiplist(
        &d,
        UpSkipListOpts {
            keys_per_node,
            fingers,
            shadow,
            ..Default::default()
        },
    );
    let w = ycsb::generate(UNIFORM_READS, records, ops, threads, 42);
    bench::load(&index, &w, threads.max(4), 1);
    // Warm-up pass, then snapshot the counters around the measured run so
    // load/warm-up traffic (including the lazy shadow build) is excluded.
    let _ = bench::run(&index, &w, 1, false, "warmup");
    let before = pmem_reads(&index);
    let sbefore = index.struct_metrics();
    let r = if batch > 1 {
        bench::run_batched(&index, &w, 1, batch, variant)
    } else {
        bench::run(&index, &w, 1, false, variant)
    };
    let after = pmem_reads(&index);
    Row {
        variant,
        records,
        threads,
        batch,
        shadow,
        mops: r.mops(),
        reads_per_op: (after - before) as f64 / r.ops as f64,
        structure: index.struct_metrics().since(&sbefore),
    }
}

fn main() {
    let args = Args::parse();
    // `--keys` sweeps the record count; `--records` remains as the
    // single-point spelling used by older scripts.
    let keys: Vec<u64> = if args.get("keys").is_some() {
        args.get("keys")
            .unwrap()
            .split(',')
            .map(|s| s.trim().parse().expect("--keys: u64 list"))
            .collect()
    } else {
        vec![args.u64("records", 100_000)]
    };
    let ops = args.u64("ops", 200_000);
    let threads = if args.get("threads").is_some() {
        args.usize_list("threads", "")
    } else {
        vec![1, 4]
    };
    let batches = args.usize_list("batch", "8,32,128");
    let keys_per_node = args.usize("keys-per-node", 256);
    let gate = args.get("gate").is_some();

    let mut variants: Vec<(&'static str, bool, bool, usize)> = vec![
        ("seed", false, false, 1),
        ("fingered", true, false, 1),
        ("shadowed", true, true, 1),
    ];
    for &b in &batches {
        variants.push(("batched", true, false, b.max(2)));
        variants.push(("shadow_batched", true, true, b.max(2)));
    }
    let mut rows = Vec::new();
    println!("variant,records,threads,batch,shadow,mops,pmem_reads_per_op");
    for &records in &keys {
        for &t in &threads {
            for &(variant, fingers, shadow, b) in &variants {
                let row = measure(variant, fingers, shadow, b, records, ops, t, keys_per_node);
                println!(
                    "{},{},{},{},{},{:.4},{:.2}",
                    row.variant,
                    row.records,
                    row.threads,
                    row.batch,
                    row.shadow,
                    row.mops,
                    row.reads_per_op
                );
                rows.push(row);
            }
        }
    }

    if let Some(path) = args.get("json") {
        let mut out = String::from("{\n");
        out.push_str("  \"experiment\": \"traversal\",\n");
        out.push_str(&format!(
            "  \"keys\": [{}],\n",
            keys.iter()
                .map(|k| k.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!("  \"ops\": {ops},\n"));
        out.push_str(&format!("  \"keys_per_node\": {keys_per_node},\n"));
        out.push_str("  \"results\": [\n");
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"variant\": \"{}\", \"records\": {}, \"threads\": {}, \"batch\": {}, \"shadow\": {}, \"mops\": {:.4}, \"pmem_reads_per_op\": {:.2}}}{}\n",
                r.variant,
                r.records,
                r.threads,
                r.batch,
                r.shadow,
                r.mops,
                r.reads_per_op,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(path, out).expect("write json report");
        eprintln!("wrote {path}");
    }

    if let Some(path) = args.get("metrics") {
        let mut report = MetricsReport::new("traversal");
        report.meta("ops", ops);
        report.meta("keys_per_node", keys_per_node);
        for r in &rows {
            let label = format!(
                "upskiplist[{},r{},t{},b{}]",
                r.variant, r.records, r.threads, r.batch
            );
            report.push(&label, "get", "mops", r.mops);
            report.push(&label, "get", "reads_per_op", r.reads_per_op);
            push_struct_rows(&mut report, &label, &r.structure);
        }
        write_report(&report, path);
    }

    // The whole point of the fast path: the shadow descent must touch
    // fewer PMEM words per read than the finger-only descent. Compare at
    // the largest key count and batch size, last thread count.
    let off = rows.iter().rev().find(|r| r.variant == "batched").unwrap();
    let on = rows
        .iter()
        .rev()
        .find(|r| r.variant == "shadow_batched")
        .unwrap();
    let seed = rows.iter().rev().find(|r| r.variant == "seed").unwrap();
    eprintln!(
        "reads/op @ {} keys, batch {}: seed {:.2}, shadow-off {:.2} -> shadow-on {:.2} ({:.1}% of off)",
        on.records,
        on.batch,
        seed.reads_per_op,
        off.reads_per_op,
        on.reads_per_op,
        100.0 * on.reads_per_op / off.reads_per_op
    );
    if gate {
        let limit = 0.75 * off.reads_per_op;
        if on.reads_per_op > limit {
            eprintln!(
                "GATE FAIL: shadow-on reads/op {:.2} exceeds 75% of shadow-off ({:.2})",
                on.reads_per_op, limit
            );
            std::process::exit(1);
        }
        eprintln!(
            "GATE OK: shadow-on reads/op {:.2} <= 75% of shadow-off ({:.2})",
            on.reads_per_op, limit
        );
    }
}
