//! E11 — the observability report: per-op pmem attribution (reads,
//! writes, flushes, fences *per operation type*), latency percentiles
//! from the obs histograms, and UPSkipList structure-internal counters.
//!
//! ```text
//! cargo run --release -p bench --bin metrics -- \
//!     --records 50000 --ops 100000 --threads 4 --batch 32 \
//!     --json results/BENCH_metrics.json
//! ```
//! Four phases per structure, each tagged with its [`pmem::OpKind`]:
//! a mixed read/update/scan run, a batched-read run, then a remove pass.
//! (The untagged load phase lands in the `other` bucket and is excluded.)
//! Emits CSV to stdout; `--json`/`--csv` also write the report to a file.

use std::sync::Arc;
use std::time::Instant;

use bench::metrics::{
    push_attribution_rows, push_latency_rows, push_struct_rows, stats_by_op, write_report,
};
use bench::{
    build_bztree, build_hybridskip, build_pmdkskip, build_upskiplist, run_metrics, Args,
    Deployment, KvIndex, UpSkipListOpts,
};
use obs::report::MetricsReport;
use obs::{ObsLevel, Registry};
use pmem::stats::OP_KINDS;
use pmem::{op_tag, OpKind, Pool};
use ycsb::{Distribution, WorkloadSpec};

/// Mixed point/range workload so every supported op kind shows up.
const MIXED: WorkloadSpec = WorkloadSpec {
    name: "mixed",
    read_pct: 60,
    update_pct: 25,
    insert_pct: 5,
    scan_pct: 10,
    rmw_pct: 0,
    distribution: Distribution::Zipfian,
};

/// Read-only uniform phase for the batched-read bucket.
const READS: WorkloadSpec = WorkloadSpec {
    name: "reads",
    read_pct: 100,
    update_pct: 0,
    insert_pct: 0,
    scan_pct: 0,
    rmw_pct: 0,
    distribution: Distribution::Uniform,
};

struct Target {
    index: Arc<dyn KvIndex>,
    pools: Vec<Arc<Pool>>,
    upskiplist: Option<Arc<upskiplist::UpSkipList>>,
}

fn build(name: &str, d: &Deployment, desc_count: usize, keys_per_node: usize) -> Target {
    match name {
        "upskiplist" => {
            let l = build_upskiplist(d, UpSkipListOpts::keys_per_node(keys_per_node));
            Target {
                pools: l.space().pools().to_vec(),
                upskiplist: Some(Arc::clone(&l)),
                index: l,
            }
        }
        "bztree" => {
            let t = build_bztree(d, desc_count);
            Target {
                pools: vec![Arc::clone(t.pool())],
                upskiplist: None,
                index: t,
            }
        }
        "pmdkskip" => {
            let s = build_pmdkskip(d);
            Target {
                pools: vec![Arc::clone(s.pool())],
                upskiplist: None,
                index: s,
            }
        }
        "hybridskip" => {
            let h = build_hybridskip(d);
            Target {
                pools: vec![Arc::clone(h.pool())],
                upskiplist: None,
                index: h,
            }
        }
        other => panic!("unknown structure {other}"),
    }
}

fn main() {
    let args = Args::parse();
    let records = args.u64("records", 50_000);
    let ops = args.u64("ops", 100_000);
    let threads = args.usize("threads", 4);
    let batch = args.usize("batch", 32);
    let structures = args.list("structures", "upskiplist,bztree,pmdkskip,hybridskip");
    let desc_count = args.usize("descriptors", 500_000.min(records as usize));
    let keys_per_node = args.usize("keys-per-node", 256);

    let mut report = MetricsReport::new("metrics");
    report.meta("records", &records.to_string());
    report.meta("ops", &ops.to_string());
    report.meta("threads", &threads.to_string());
    report.meta("batch", &batch.to_string());

    let mixed = ycsb::generate(MIXED, records, ops, threads, 42);
    let reads = ycsb::generate(READS, records, ops, threads, 43);

    for sname in &structures {
        let d = Deployment {
            obs: ObsLevel::Full,
            ..Deployment::simple(records)
        };
        let t = build(sname, &d, desc_count, keys_per_node);
        let registry = Registry::new();
        let before = stats_by_op(&t.pools);

        // Load is untagged on purpose: it lands in the `other` bucket so
        // the per-op numbers below measure steady state only.
        bench::load(&t.index, &mixed, threads.max(4), 1);
        let base = t.upskiplist.as_ref().map(|l| l.struct_metrics());

        let mixed_r = run_metrics(&t.index, &mixed, 1, 1, "mixed", Some(&registry));
        let batched_r = run_metrics(&t.index, &reads, 1, batch, "reads", Some(&registry));

        // Remove pass: tombstone a tenth of the key space.
        let lat_remove = registry.histogram("lat.remove");
        let removes = (records / 10).max(1);
        {
            let _tag = op_tag(OpKind::Remove);
            for &(k, _) in mixed.load.iter().take(removes as usize) {
                let t0 = Instant::now();
                std::hint::black_box(t.index.remove(k));
                lat_remove.record(t0.elapsed().as_nanos() as u64);
            }
        }

        let after = stats_by_op(&t.pools);
        // Driver-level call counts per kind, straight from the latency
        // histograms (one sample per call).
        let mut op_counts = [0u64; OP_KINDS];
        for (name, kind) in [
            ("lat.get", OpKind::Get),
            ("lat.insert", OpKind::Insert),
            ("lat.remove", OpKind::Remove),
            ("lat.scan", OpKind::Scan),
            ("lat.batch", OpKind::Batch),
        ] {
            op_counts[kind as usize] = registry.histogram(name).count();
        }

        push_attribution_rows(&mut report, sname, &before, &after, &op_counts);
        push_latency_rows(&mut report, sname, &registry);
        report.push(sname, "all", "mixed_mops", mixed_r.mops());
        report.push(sname, "all", "batched_read_mops", batched_r.mops());
        if let (Some(l), Some(base)) = (&t.upskiplist, base) {
            push_struct_rows(&mut report, sname, &l.struct_metrics().since(&base));
        }
        eprintln!(
            "{sname}: mixed {:.3} Mops, batched reads {:.3} Mops",
            mixed_r.mops(),
            batched_r.mops()
        );
    }

    print!("{}", report.to_csv());
    if let Some(path) = args.get("json") {
        write_report(&report, path);
    }
    if let Some(path) = args.get("csv") {
        write_report(&report, path);
    }
}
