//! E11 — the observability report: per-op pmem attribution (reads,
//! writes, flushes, fences *per operation type*), latency percentiles
//! from the obs histograms, and UPSkipList structure-internal counters.
//!
//! ```text
//! cargo run --release -p bench --bin metrics -- \
//!     --records 50000 --ops 100000 --threads 4 --batch 32 \
//!     --json results/BENCH_metrics.json
//! ```
//! Four phases per structure, each tagged with its [`pmem::OpKind`]:
//! a mixed read/update/scan run, a batched-read run, then a remove pass.
//! (The untagged load phase lands in the `other` bucket and is excluded.)
//! Emits CSV to stdout; `--json`/`--csv` also write the report to a file.
//!
//! `--guard [--baseline PATH] [--guard-ratio R]` additionally compares the
//! upskiplist `mixed_mops` of this run (with the pmcheck dynamic detector
//! at its default `PmCheckLevel::Off`, whose entire hot-path cost is one
//! relaxed `AtomicU8` load and a predictable branch per pmem op) against
//! the checked-in pre-detector baseline, and exits nonzero if throughput
//! fell below `R` × baseline (default 0.5 — generous on purpose: the
//! guard is a tripwire for the detector accidentally going hot at `Off`,
//! not a precision benchmark).
//!
//! `--lint-time [--lint-budget SECS]` times the static persist-ordering
//! lint (the whole interprocedural pass) over the workspace and fails if
//! it exceeds the budget (default 5 s) — the lint blocks CI, so its wall
//! time is guarded like any other regression.

use std::sync::Arc;
use std::time::Instant;

use bench::metrics::{
    push_attribution_rows, push_latency_rows, push_struct_rows, stats_by_op, write_report,
};
use bench::{
    build_bztree, build_hybridskip, build_pmdkskip, build_upskiplist, run_metrics, Args,
    Deployment, KvIndex, UpSkipListOpts,
};
use obs::report::MetricsReport;
use obs::{ObsLevel, Registry};
use pmem::stats::OP_KINDS;
use pmem::{op_tag, OpKind, Pool};
use ycsb::{Distribution, WorkloadSpec};

/// Mixed point/range workload so every supported op kind shows up.
const MIXED: WorkloadSpec = WorkloadSpec {
    name: "mixed",
    read_pct: 60,
    update_pct: 25,
    insert_pct: 5,
    scan_pct: 10,
    rmw_pct: 0,
    distribution: Distribution::Zipfian,
};

/// Read-only uniform phase for the batched-read bucket.
const READS: WorkloadSpec = WorkloadSpec {
    name: "reads",
    read_pct: 100,
    update_pct: 0,
    insert_pct: 0,
    scan_pct: 0,
    rmw_pct: 0,
    distribution: Distribution::Uniform,
};

struct Target {
    index: Arc<dyn KvIndex>,
    pools: Vec<Arc<Pool>>,
    upskiplist: Option<Arc<upskiplist::UpSkipList>>,
}

fn build(name: &str, d: &Deployment, desc_count: usize, keys_per_node: usize) -> Target {
    match name {
        "upskiplist" => {
            let l = build_upskiplist(d, UpSkipListOpts::keys_per_node(keys_per_node));
            Target {
                pools: l.space().pools().to_vec(),
                upskiplist: Some(Arc::clone(&l)),
                index: l,
            }
        }
        "bztree" => {
            let t = build_bztree(d, desc_count);
            Target {
                pools: vec![Arc::clone(t.pool())],
                upskiplist: None,
                index: t,
            }
        }
        "pmdkskip" => {
            let s = build_pmdkskip(d);
            Target {
                pools: vec![Arc::clone(s.pool())],
                upskiplist: None,
                index: s,
            }
        }
        "hybridskip" => {
            let h = build_hybridskip(d);
            Target {
                pools: vec![Arc::clone(h.pool())],
                upskiplist: None,
                index: h,
            }
        }
        other => panic!("unknown structure {other}"),
    }
}

/// Pull `structures.<name>.all.mixed_mops` out of a `MetricsReport` JSON
/// file with a dependency-free scan: find the structure key, then the
/// first `"mixed_mops":` after it (the `all` section is emitted first).
fn baseline_mixed_mops(path: &str, structure: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let at = text.find(&format!("\"{structure}\""))?;
    let rest = &text[at..];
    let v = rest
        .find("\"mixed_mops\":")
        .map(|i| i + "\"mixed_mops\":".len())?;
    let tail = rest[v..].trim_start();
    let end = tail
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Walk up from the cwd to the directory holding `crates/` — same
/// discovery the pmcheck binary uses, so `--lint-time` works from any
/// directory inside the workspace.
fn workspace_root() -> Option<std::path::PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() {
    let args = Args::parse();
    let records = args.u64("records", 50_000);
    let ops = args.u64("ops", 100_000);
    let threads = args.usize("threads", 4);
    let batch = args.usize("batch", 32);
    let structures = args.list("structures", "upskiplist,bztree,pmdkskip,hybridskip");
    let desc_count = args.usize("descriptors", 500_000.min(records as usize));
    let keys_per_node = args.usize("keys-per-node", 256);
    let guard = args.flag("guard");
    let baseline_path = args.get("baseline").unwrap_or("results/BENCH_metrics.json");
    let guard_ratio: f64 = args
        .get("guard-ratio")
        .map(|v| v.parse().expect("--guard-ratio must be a float"))
        .unwrap_or(0.5);
    // Read the baseline up front: the same invocation may rewrite the
    // baseline file via --json, and the guard must compare against the
    // pre-run numbers, not its own output.
    let guard_base = guard
        .then(|| baseline_mixed_mops(baseline_path, "upskiplist"))
        .flatten();
    let mut guard_mops: Option<f64> = None;

    let mut report = MetricsReport::new("metrics");
    report.meta("records", records.to_string());
    report.meta("ops", ops.to_string());
    report.meta("threads", threads.to_string());
    report.meta("batch", batch.to_string());

    let mixed = ycsb::generate(MIXED, records, ops, threads, 42);
    let reads = ycsb::generate(READS, records, ops, threads, 43);

    for sname in &structures {
        let d = Deployment {
            obs: ObsLevel::Full,
            ..Deployment::simple(records)
        };
        let t = build(sname, &d, desc_count, keys_per_node);
        let registry = Registry::new();
        let before = stats_by_op(&t.pools);

        // Load is untagged on purpose: it lands in the `other` bucket so
        // the per-op numbers below measure steady state only.
        bench::load(&t.index, &mixed, threads.max(4), 1);
        let base = t.upskiplist.as_ref().map(|l| l.struct_metrics());

        let mixed_r = run_metrics(&t.index, &mixed, 1, 1, "mixed", Some(&registry));
        let batched_r = run_metrics(&t.index, &reads, 1, batch, "reads", Some(&registry));

        // Remove pass: tombstone a tenth of the key space.
        let lat_remove = registry.histogram("lat.remove");
        let removes = (records / 10).max(1);
        {
            let _tag = op_tag(OpKind::Remove);
            for &(k, _) in mixed.load.iter().take(removes as usize) {
                let t0 = Instant::now();
                std::hint::black_box(t.index.remove(k));
                lat_remove.record(t0.elapsed().as_nanos() as u64);
            }
        }

        let after = stats_by_op(&t.pools);
        // Driver-level call counts per kind, straight from the latency
        // histograms (one sample per call).
        let mut op_counts = [0u64; OP_KINDS];
        for (name, kind) in [
            ("lat.get", OpKind::Get),
            ("lat.insert", OpKind::Insert),
            ("lat.remove", OpKind::Remove),
            ("lat.scan", OpKind::Scan),
            ("lat.batch", OpKind::Batch),
        ] {
            op_counts[kind as usize] = registry.histogram(name).count();
        }

        push_attribution_rows(&mut report, sname, &before, &after, &op_counts);
        push_latency_rows(&mut report, sname, &registry);
        if *sname == "upskiplist" {
            // PMD02 (redundant empty fence) per op kind, from a small
            // single-threaded Track-level probe: the fence-diet insert
            // path must keep its bucket at zero.
            let (pmd02, pops) = bench::metrics::pmd02_probe(
                UpSkipListOpts::keys_per_node(keys_per_node),
                (records / 10).max(500),
            );
            bench::metrics::push_pmd02_rows(&mut report, sname, &pmd02, &pops);
        }
        report.push(sname, "all", "mixed_mops", mixed_r.mops());
        report.push(sname, "all", "batched_read_mops", batched_r.mops());
        if guard && sname == "upskiplist" {
            for p in &t.pools {
                assert_eq!(
                    p.check_level(),
                    pmem::PmCheckLevel::Off,
                    "the guard measures the detector's Off cost; a pool came up checked"
                );
            }
            guard_mops = Some(mixed_r.mops());
        }
        if let (Some(l), Some(base)) = (&t.upskiplist, base) {
            push_struct_rows(&mut report, sname, &l.struct_metrics().since(&base));
        }
        eprintln!(
            "{sname}: mixed {:.3} Mops, batched reads {:.3} Mops",
            mixed_r.mops(),
            batched_r.mops()
        );
    }

    // --lint-time: the static persist-ordering lint blocks CI, so its
    // wall time is a budgeted metric like any throughput number. The
    // interprocedural pass (summaries + call-graph fixpoints) must stay
    // well under the budget or it gets demoted to a nightly job.
    let mut lint_fail = false;
    if args.flag("lint-time") {
        let budget: f64 = args
            .get("lint-budget")
            .map(|v| v.parse().expect("--lint-budget must be a float (seconds)"))
            .unwrap_or(5.0);
        match workspace_root() {
            Some(root) => {
                let t0 = Instant::now();
                let lint = pmcheck::lint_workspace(&root).expect("pmcheck lint failed");
                let secs = t0.elapsed().as_secs_f64();
                report.push("pmcheck", "all", "lint_secs", secs);
                report.push("pmcheck", "all", "lint_files", lint.files as f64);
                eprintln!(
                    "pmcheck lint: {} files, {} violations, {} proven in {secs:.3} s \
                     (budget {budget:.1} s)",
                    lint.files,
                    lint.violations.len(),
                    lint.proven.len()
                );
                if secs > budget {
                    eprintln!(
                        "pmcheck lint: FAIL — analysis pass exceeded its {budget:.1} s budget; \
                         it is too slow to keep blocking in CI"
                    );
                    lint_fail = true;
                }
            }
            None => eprintln!("pmcheck lint: workspace root not found — skipping timing"),
        }
    }

    print!("{}", report.to_csv());
    if let Some(path) = args.get("json") {
        write_report(&report, path);
    }
    if let Some(path) = args.get("csv") {
        write_report(&report, path);
    }

    if guard {
        let current =
            guard_mops.expect("--guard needs upskiplist in --structures to measure Off-level cost");
        match guard_base {
            Some(base) => {
                let floor = base * guard_ratio;
                eprintln!(
                    "pmcheck guard: upskiplist mixed {current:.3} Mops vs pre-detector \
                     baseline {base:.3} Mops (floor {floor:.3} at ratio {guard_ratio})"
                );
                if current < floor {
                    eprintln!(
                        "pmcheck guard: FAIL — PmCheckLevel::Off is supposed to cost one \
                         relaxed u8 load per op; something made the hot path expensive"
                    );
                    std::process::exit(1);
                }
                eprintln!("pmcheck guard: ok");
            }
            None => {
                eprintln!(
                    "pmcheck guard: no baseline at {baseline_path} — recording only \
                     (run the full metrics bin with --json to create one)"
                );
            }
        }
    }
    if lint_fail {
        std::process::exit(1);
    }
}
