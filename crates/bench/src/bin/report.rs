//! Summarize the CSVs produced by `run_experiments.sh` into the markdown
//! tables EXPERIMENTS.md is built from.
//!
//! ```text
//! cargo run --release -p bench --bin report -- --dir results
//! ```

use std::collections::BTreeMap;
use std::path::Path;

use bench::Args;

fn read_csv(path: &Path) -> Vec<Vec<String>> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.split(',').map(|c| c.trim().to_string()).collect())
        .collect()
}

fn throughput_table(dir: &Path) {
    let rows = read_csv(&dir.join("e1_e2_throughput.csv"));
    if rows.len() < 2 {
        return;
    }
    // (workload, structure) -> threads -> mops
    let mut by_cell: BTreeMap<(String, String), BTreeMap<u64, f64>> = BTreeMap::new();
    let mut threads: Vec<u64> = Vec::new();
    for r in rows.iter().skip(1) {
        if r.len() != 4 || r[0] == "workload" {
            continue;
        }
        let t: u64 = r[2].parse().unwrap_or(0);
        let m: f64 = r[3].parse().unwrap_or(0.0);
        by_cell
            .entry((r[0].clone(), r[1].clone()))
            .or_default()
            .insert(t, m);
        if !threads.contains(&t) {
            threads.push(t);
        }
    }
    threads.sort_unstable();
    println!("## E1/E2 — throughput (Mops/s)\n");
    print!("| workload | structure |");
    for t in &threads {
        print!(" {t} thr |");
    }
    println!();
    print!("|---|---|");
    for _ in &threads {
        print!("---|");
    }
    println!();
    for ((w, s), cells) in &by_cell {
        print!("| {w} | {s} |");
        for t in &threads {
            match cells.get(t) {
                Some(m) => print!(" {m:.3} |"),
                None => print!(" – |"),
            }
        }
        println!();
    }
    println!();
}

fn simple_table(dir: &Path, file: &str, title: &str) {
    let rows = read_csv(&dir.join(file));
    if rows.len() < 2 {
        return;
    }
    println!("## {title}\n");
    let mut header_done = false;
    for r in &rows {
        if r.iter().all(|c| c.is_empty()) {
            continue;
        }
        println!("| {} |", r.join(" | "));
        if !header_done {
            println!("|{}", "---|".repeat(r.len()));
            header_done = true;
        }
    }
    println!();
}

fn crash_summary(dir: &Path) {
    for (file, title) in [
        ("e7_crash_test.txt", "E7 — crash testing"),
        ("e7_corruption_control.txt", "E7 — corruption control"),
    ] {
        if let Ok(text) = std::fs::read_to_string(dir.join(file)) {
            if let Some(line) = text.lines().rev().find(|l| l.contains("trials")) {
                println!("## {title}\n\n{line}\n");
            }
        }
    }
}

fn main() {
    let args = Args::parse();
    let dir = args.get("dir").unwrap_or("results").to_string();
    let dir = Path::new(&dir);
    println!("# Experiment report ({})\n", dir.display());
    throughput_table(dir);
    simple_table(dir, "e3_pointer_compare.csv", "E3 — RIV vs fat pointers");
    simple_table(dir, "e4_numa_compare.csv", "E4 — striped vs multi-pool");
    simple_table(dir, "e5_latency.csv", "E5 — latency percentiles (µs)");
    simple_table(dir, "e6_recovery.csv", "E6 — recovery time (ms)");
    crash_summary(dir);
}
