//! E1/E2 — Figures 5.1 and 5.2: YCSB throughput vs thread count for
//! UPSkipList, BzTree, and the PMDK lock-based skip list.
//!
//! ```text
//! cargo run --release -p bench --bin throughput -- \
//!     --workloads A,B,C,D --threads 1,2,4,8 --records 200000 --ops 400000
//! ```
//! `--batch N` groups consecutive reads into `get_batch` calls of up to N
//! keys (writes flush the pending batch, preserving per-thread order).
//! Emits CSV: `workload,structure,threads,mops`.

use std::sync::Arc;

use bench::{build_bztree, build_pmdkskip, build_upskiplist, Args, Deployment, KvIndex};
use ycsb::workload_by_name;

fn main() {
    let args = Args::parse();
    let records = args.u64("records", 200_000);
    let ops = args.u64("ops", 400_000);
    let threads = if args.get("threads").is_some() {
        args.usize_list("threads", "")
    } else {
        bench::default_thread_sweep()
    };
    let workloads = args.list("workloads", "A,B,C,D");
    let structures = args.list("structures", "upskiplist,bztree,pmdkskip");
    let desc_count = args.usize("descriptors", 500_000.min(records as usize));
    let batch = args.usize("batch", 1);

    println!("workload,structure,threads,mops");
    for wname in &workloads {
        let spec = workload_by_name(wname).unwrap_or_else(|| panic!("unknown workload {wname}"));
        for t in &threads {
            let w = ycsb::generate(spec, records, ops, *t, 42);
            for s in &structures {
                let d = Deployment::simple(records);
                let index: Arc<dyn KvIndex> = match s.as_str() {
                    "upskiplist" => build_upskiplist(&d, 256),
                    "bztree" => build_bztree(&d, desc_count),
                    "pmdkskip" => build_pmdkskip(&d),
                    other => panic!("unknown structure {other}"),
                };
                bench::load(&index, &w, (*t).max(4), 1);
                // Warm-up pass (caches, free lists), then the measured run.
                let _ = bench::run(&index, &w, 1, false, "warmup");
                let name: &'static str = match s.as_str() {
                    "upskiplist" => "upskiplist",
                    "bztree" => "bztree",
                    _ => "pmdkskip",
                };
                let r = if batch > 1 {
                    bench::run_batched(&index, &w, 1, batch, name)
                } else {
                    bench::run(&index, &w, 1, false, name)
                };
                println!("{},{},{},{:.4}", spec.name, name, t, r.mops());
            }
        }
    }
}
