//! E1/E2 — Figures 5.1 and 5.2: YCSB throughput vs thread count for
//! UPSkipList, BzTree, and the PMDK lock-based skip list.
//!
//! ```text
//! cargo run --release -p bench --bin throughput -- \
//!     --workloads A,B,C,D --threads 1,2,4,8 --records 200000 --ops 400000
//! ```
//! `--batch N` groups consecutive reads into `get_batch` calls of up to N
//! keys (writes flush the pending batch, preserving per-thread order).
//! `--metrics PATH` switches the pools to `ObsLevel::Counters`, tags every
//! op for per-op pmem attribution, and writes a [`MetricsReport`]
//! (JSON or CSV by extension) alongside the throughput CSV on stdout.
//! Emits CSV: `workload,structure,threads,mops`.

use std::sync::Arc;

use bench::metrics::{push_attribution_rows, stats_by_op, write_report};
use bench::{
    build_bztree, build_pmdkskip, build_upskiplist, run_metrics, Args, Deployment, KvIndex,
    UpSkipListOpts,
};
use obs::report::MetricsReport;
use obs::{ObsLevel, Registry};
use pmem::stats::OP_KINDS;
use pmem::{OpKind, Pool};
use ycsb::workload_by_name;

fn main() {
    let args = Args::parse();
    let records = args.u64("records", 200_000);
    let ops = args.u64("ops", 400_000);
    let threads = if args.get("threads").is_some() {
        args.usize_list("threads", "")
    } else {
        bench::default_thread_sweep()
    };
    let workloads = args.list("workloads", "A,B,C,D");
    let structures = args.list("structures", "upskiplist,bztree,pmdkskip");
    let desc_count = args.usize("descriptors", 500_000.min(records as usize));
    let batch = args.usize("batch", 1);
    let metrics_path = args.get("metrics").map(str::to_owned);

    let mut report = MetricsReport::new("throughput");
    report.meta("records", records);
    report.meta("ops", ops);

    println!("workload,structure,threads,mops");
    for wname in &workloads {
        let spec = workload_by_name(wname).unwrap_or_else(|| panic!("unknown workload {wname}"));
        for t in &threads {
            let w = ycsb::generate(spec, records, ops, *t, 42);
            for s in &structures {
                let d = Deployment {
                    obs: if metrics_path.is_some() {
                        ObsLevel::Counters
                    } else {
                        ObsLevel::Off
                    },
                    ..Deployment::simple(records)
                };
                let (index, pools): (Arc<dyn KvIndex>, Vec<Arc<Pool>>) = match s.as_str() {
                    "upskiplist" => {
                        let l = build_upskiplist(&d, UpSkipListOpts::keys_per_node(256));
                        let pools = l.space().pools().to_vec();
                        (l, pools)
                    }
                    "bztree" => {
                        let b = build_bztree(&d, desc_count);
                        let pools = vec![Arc::clone(b.pool())];
                        (b, pools)
                    }
                    "pmdkskip" => {
                        let p = build_pmdkskip(&d);
                        let pools = vec![Arc::clone(p.pool())];
                        (p, pools)
                    }
                    other => panic!("unknown structure {other}"),
                };
                bench::load(&index, &w, (*t).max(4), 1);
                // Warm-up pass (caches, free lists), then the measured run.
                let _ = bench::run(&index, &w, 1, false, "warmup");
                let name: &'static str = match s.as_str() {
                    "upskiplist" => "upskiplist",
                    "bztree" => "bztree",
                    _ => "pmdkskip",
                };
                let r = if metrics_path.is_some() {
                    let registry = Registry::new();
                    let before = stats_by_op(&pools);
                    let r = run_metrics(&index, &w, 1, batch, name, Some(&registry));
                    let after = stats_by_op(&pools);
                    let mut op_counts = [0u64; OP_KINDS];
                    for (h, kind) in [
                        ("lat.get", OpKind::Get),
                        ("lat.insert", OpKind::Insert),
                        ("lat.scan", OpKind::Scan),
                        ("lat.batch", OpKind::Batch),
                    ] {
                        op_counts[kind as usize] = registry.histogram(h).count();
                    }
                    let label = format!("{name}[{},t{}]", spec.name, t);
                    push_attribution_rows(&mut report, &label, &before, &after, &op_counts);
                    report.push(&label, "all", "mops", r.mops());
                    r
                } else if batch > 1 {
                    bench::run_batched(&index, &w, 1, batch, name)
                } else {
                    bench::run(&index, &w, 1, false, name)
                };
                println!("{},{},{},{:.4}", spec.name, name, t, r.mops());
            }
        }
    }

    if let Some(path) = &metrics_path {
        write_report(&report, path);
    }
}
