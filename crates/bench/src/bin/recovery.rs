//! E6 — Table 5.4: recovery time after a crash during a 100%-insert
//! workload, for UPSkipList, BzTree (100K and 500K PMwCAS descriptors),
//! and the PMDK lock-based skip list. Average of `--trials` runs.
//!
//! Recovery time is what the thesis measures: the time for the driver to
//! reconnect with the structure until it can serve new requests —
//! UPSkipList and the PMDK list defer all real repair work into normal
//! operation (O(threads)), while BzTree must scan its whole descriptor
//! pool.
//!
//! Emits CSV: `structure,trial,recovery_ms` plus an average table.

use std::sync::Arc;
use std::time::Instant;

use bench::{
    build_bztree, build_pmdkskip, build_upskiplist, Args, Deployment, KvIndex, UpSkipListOpts,
};
use pmem::run_crashable;

fn run_inserts_until_crash(
    index: Arc<dyn KvIndex>,
    controller: Arc<pmem::CrashController>,
    start_key: u64,
    threads: usize,
    crash_after: u64,
) {
    controller.arm_after(crash_after);
    std::thread::scope(|s| {
        for t in 0..threads {
            let index = Arc::clone(&index);
            s.spawn(move || {
                pmem::thread::register(t, 0);
                let mut k = start_key + t as u64;
                let _ = run_crashable(|| loop {
                    index.insert(k, k);
                    k += threads as u64;
                });
                pmem::discard_pending();
            });
        }
    });
    assert!(
        controller.is_crashed(),
        "insert phase ended without crashing"
    );
}

fn main() {
    pmem::crash::silence_crash_panics();
    let args = Args::parse();
    let records = args.u64("records", 100_000);
    let trials = args.u64("trials", 3);
    let threads = args.usize("threads", 8);
    let crash_after = args.u64("crash-after", 2_000_000);

    println!("structure,trial,recovery_ms");
    let mut averages: Vec<(String, f64)> = Vec::new();

    // --- UPSkipList ---
    let mut total = 0.0;
    for trial in 0..trials {
        let d = Deployment {
            tracked: true,
            ..Deployment::simple(records)
        };
        let list = build_upskiplist(&d, UpSkipListOpts::keys_per_node(256));
        let index: Arc<dyn KvIndex> = Arc::clone(&list) as _;
        let controller = Arc::clone(list.space().pool(0).crash_controller());
        run_inserts_until_crash(
            Arc::clone(&index),
            Arc::clone(&controller),
            1,
            threads,
            crash_after,
        );
        controller.disarm();
        for pool in list.space().pools() {
            pool.simulate_crash();
        }
        let t0 = Instant::now();
        list.recover();
        let ms = t0.elapsed().as_secs_f64() * 1000.0;
        // Ready to serve: one probe op.
        let _ = list.get(1);
        println!("upskiplist,{trial},{ms:.3}");
        total += ms;
    }
    averages.push(("upskiplist".into(), total / trials as f64));

    // --- BzTree at two descriptor-pool sizes ---
    for desc in [500_000usize, 100_000] {
        let mut total = 0.0;
        for trial in 0..trials {
            let d = Deployment {
                tracked: true,
                ..Deployment::simple(records)
            };
            let tree = build_bztree(&d, desc);
            let pool = Arc::clone(tree.pool());
            let index: Arc<dyn KvIndex> = Arc::clone(&tree) as _;
            let controller = Arc::clone(pool.crash_controller());
            run_inserts_until_crash(index, Arc::clone(&controller), 1, threads, crash_after);
            controller.disarm();
            pool.simulate_crash();
            drop(tree);
            let t0 = Instant::now();
            let (tree, stats) = bztree::BzTree::open(Arc::clone(&pool));
            let ms = t0.elapsed().as_secs_f64() * 1000.0;
            assert_eq!(stats.descriptors_scanned, desc as u64);
            let _ = tree.get(1);
            println!("bztree_{desc}desc,{trial},{ms:.3}");
            total += ms;
        }
        averages.push((format!("bztree_{desc}desc"), total / trials as f64));
    }

    // --- PMDK lock-based skip list ---
    let mut total = 0.0;
    for trial in 0..trials {
        let d = Deployment {
            tracked: true,
            ..Deployment::simple(records)
        };
        let list = build_pmdkskip(&d);
        let pool = Arc::clone(list.pool());
        let index: Arc<dyn KvIndex> = Arc::clone(&list) as _;
        let controller = Arc::clone(pool.crash_controller());
        run_inserts_until_crash(index, Arc::clone(&controller), 1, threads, crash_after);
        controller.disarm();
        pool.simulate_crash();
        drop(list);
        let t0 = Instant::now();
        let (list, _rolled) = pmdkskip::PmdkSkipList::open(Arc::clone(&pool));
        let ms = t0.elapsed().as_secs_f64() * 1000.0;
        let _ = list.get(1);
        println!("pmdkskip,{trial},{ms:.3}");
        total += ms;
    }
    averages.push(("pmdkskip".into(), total / trials as f64));

    // --- Hybrid DRAM/PMEM skip list (NV-Skiplist style, extension) ---
    // Recovery rebuilds the volatile index by scanning the bottom level.
    let mut total = 0.0;
    for trial in 0..trials {
        let pool = bench::build_pool(
            &Deployment {
                tracked: true,
                ..Deployment::simple(records)
            },
            8 + 3 * 4 * records + (1 << 20),
        );
        let list = hybridskip::HybridSkipList::create(Arc::clone(&pool));
        let index: Arc<dyn KvIndex> = Arc::clone(&list) as _;
        let controller = Arc::clone(pool.crash_controller());
        run_inserts_until_crash(index, Arc::clone(&controller), 1, threads, crash_after);
        controller.disarm();
        pool.simulate_crash();
        drop(list);
        let t0 = Instant::now();
        let (list, _scanned) = hybridskip::HybridSkipList::open(Arc::clone(&pool));
        let ms = t0.elapsed().as_secs_f64() * 1000.0;
        let _ = list.get(1);
        println!("hybridskip,{trial},{ms:.3}");
        total += ms;
    }
    averages.push(("hybridskip".into(), total / trials as f64));

    println!();
    println!("structure,avg_recovery_ms");
    for (name, avg) in averages {
        println!("{name},{avg:.3}");
    }

    // --- Recovery vs structure size: the §4.1 practicality argument.
    // UPSkipList's restart cost is O(pools); the hybrid design's is O(n).
    println!();
    println!("records,upskiplist_ms,hybridskip_ms");
    for n in [records / 4, records, records * 4] {
        // UPSkipList at size n.
        let d = Deployment {
            tracked: true,
            ..Deployment::simple(n)
        };
        let ups = build_upskiplist(&d, UpSkipListOpts::keys_per_node(256));
        for k in 1..=n {
            ups.insert(k, k);
        }
        for pool in ups.space().pools() {
            pool.simulate_crash();
        }
        let t0 = Instant::now();
        ups.recover();
        let _ = ups.get(1);
        let ups_ms = t0.elapsed().as_secs_f64() * 1000.0;
        // Hybrid at size n.
        let pool = bench::build_pool(&d, 8 + 3 * 2 * n + (1 << 20));
        let hy = hybridskip::HybridSkipList::create(Arc::clone(&pool));
        for k in 1..=n {
            hy.insert(k, k);
        }
        pool.mark_all_persisted();
        pool.simulate_crash();
        drop(hy);
        let t0 = Instant::now();
        let (hy, _) = hybridskip::HybridSkipList::open(Arc::clone(&pool));
        let _ = hy.get(1);
        let hy_ms = t0.elapsed().as_secs_f64() * 1000.0;
        println!("{n},{ups_ms:.3},{hy_ms:.3}");
    }
}
