//! E14 — serving layer: throughput and tail latency of the NUMA-sharded
//! request router vs shard count and offered load.
//!
//! The storage layer is `UpSkipList`; the serving layer (`service` crate)
//! hash-partitions the key space across shards, one pool per simulated
//! NUMA node, with a dedicated worker per shard registered on the shard's
//! home node. The 1-shard baseline is the "interleaved device": a single
//! pool striped across every node, so roughly `(nodes-1)/nodes` of its
//! accesses pay the remote-NUMA penalty, while the sharded deployments
//! make every worker access node-local. The latency model's remote
//! penalty is cranked up (`--remote-spins`) so pmem locality — not host
//! scheduling — decides the outcome; on a single-CPU host this is the
//! whole effect, which is exactly what the simulation is for.
//!
//! Workload: uniform-key YCSB-B (95/5) so shard load is balanced, with a
//! slice of requests folded into cross-shard `MultiGet`/`MultiPut` to
//! exercise the gather and latch paths. Closed-loop rows sweep logical
//! client counts; optional open-loop rows (`--rates`) sweep offered
//! request rates.
//!
//! ```text
//! cargo run --release -p bench --bin serving -- \
//!     --json results/BENCH_serving.json
//! cargo run --release -p bench --bin serving -- --smoke --gate    # CI
//! ```
//!
//! Emits CSV rows `mode,shards,load,mops,p50_ns,p95_ns,p99_ns` on stdout
//! plus the full metrics report (per-shard queue depth, batch occupancy,
//! latch waits) to `--json`/`--csv`. `--gate` exits nonzero unless the
//! max-shard closed-loop throughput beats the 1-shard baseline by
//! `--gate-ratio` (default 1.8; 1.3 with `--smoke`).

use std::sync::Arc;

use bench::{build_upskiplist, build_upskiplist_shards, Args, Deployment, UpSkipListOpts};
use obs::report::MetricsReport;
use obs::HistSummary;
use pmem::LatencyModel;
use service::loadgen::{self, LoadResult};
use service::{KvService, Request, ServiceConfig, ShardSpec};
use upskiplist::UpSkipList;

/// Uniform-key YCSB-B: the standard 95/5 read/update mix, uniform key
/// choice so every shard sees the same load (the zipfian head would pin
/// most traffic on whichever shard owns the hot keys and measure hash
/// luck instead of the serving layer).
const WORKLOAD_B_UNIFORM: ycsb::WorkloadSpec = ycsb::WorkloadSpec {
    name: "B-uniform",
    read_pct: 95,
    update_pct: 5,
    insert_pct: 0,
    scan_pct: 0,
    rmw_pct: 0,
    distribution: ycsb::Distribution::Uniform,
};

struct Config {
    records: u64,
    nodes: u16,
    remote_spins: u32,
    max_batch: usize,
    queue_cap: usize,
}

/// Build the storage layer for a shard count: 1 shard = one pool striped
/// across all nodes; k shards = one pool per shard homed on node
/// `i % nodes`.
fn build_shards(cfg: &Config, shards: u16) -> Vec<Arc<UpSkipList>> {
    let latency = LatencyModel {
        remote_spins: cfg.remote_spins,
        ..LatencyModel::pmem_default()
    };
    if shards == 1 {
        let d = Deployment {
            latency,
            striped_nodes: cfg.nodes,
            ..Deployment::simple(cfg.records)
        };
        vec![build_upskiplist(&d, UpSkipListOpts::default())]
    } else {
        let d = Deployment {
            latency,
            ..Deployment::simple(cfg.records)
        };
        build_upskiplist_shards(&d, UpSkipListOpts::default(), shards, cfg.nodes)
    }
}

/// Pre-load the records directly through each shard's native batch path,
/// partitioned with the same hash the router uses, from a thread
/// registered on the shard's home node.
fn preload(lists: &[Arc<UpSkipList>], nodes: u16, load: &[(u64, u64)]) {
    let mut per: Vec<Vec<(u64, u64)>> = vec![Vec::new(); lists.len()];
    for &(k, v) in load {
        per[(ycsb::fnv1a(k) % lists.len() as u64) as usize].push((k, v));
    }
    std::thread::scope(|s| {
        for (i, (list, pairs)) in lists.iter().zip(per).enumerate() {
            let list = Arc::clone(list);
            s.spawn(move || {
                pmem::thread::register(i, i as u16 % nodes);
                list.insert_batch(&pairs);
            });
        }
    });
}

fn start_service(cfg: &Config, lists: Vec<Arc<UpSkipList>>) -> Arc<KvService> {
    let nodes = cfg.nodes;
    let specs = lists
        .into_iter()
        .enumerate()
        .map(|(i, list)| ShardSpec {
            list,
            node: i as u16 % nodes,
        })
        .collect();
    KvService::start(
        specs,
        ServiceConfig {
            workers_per_shard: 1,
            max_batch: cfg.max_batch,
            queue_cap: cfg.queue_cap,
        },
    )
}

/// One measured run; returns throughput plus the request-latency summary
/// delta attributable to this run.
fn measure(
    svc: &Arc<KvService>,
    trace: &[Request],
    run: impl FnOnce(&Arc<KvService>, &[Request]) -> LoadResult,
) -> (LoadResult, HistSummary) {
    let before = svc.registry().snapshot();
    let res = run(svc, trace);
    let after = svc.registry().snapshot();
    let lat = after
        .since(&before)
        .hists
        .get("svc.lat.request")
        .map(|h| h.summary())
        .unwrap_or_default();
    (res, lat)
}

fn push_row(
    report: &mut MetricsReport,
    mode: &str,
    shards: u16,
    load: u64,
    res: &LoadResult,
    lat: &HistSummary,
) {
    let structure = format!("s{shards}");
    let op = format!("{mode}@{load}");
    report.push(&structure, &op, "mops", res.mops());
    report.push(&structure, &op, "completed", res.completed as f64);
    report.push(&structure, &op, "p50_ns", lat.p50 as f64);
    report.push(&structure, &op, "p95_ns", lat.p95 as f64);
    report.push(&structure, &op, "p99_ns", lat.p99 as f64);
    println!(
        "{mode},{shards},{load},{:.4},{},{},{}",
        res.mops(),
        lat.p50,
        lat.p95,
        lat.p99
    );
}

/// Dump the per-shard serving metrics accumulated over a service's whole
/// lifetime (all load levels) into the report.
fn push_shard_metrics(report: &mut MetricsReport, svc: &KvService, shards: u16) {
    let snap = svc.registry().snapshot();
    let structure = format!("s{shards}");
    for i in 0..shards as usize {
        let op = format!("shard{i}");
        for c in ["enqueued", "batches", "batch_ops", "latch_waits"] {
            let v = snap.counter(&format!("svc.shard{i}.{c}"));
            report.push(&structure, &op, c, v as f64);
        }
        for h in ["queue_depth", "batch_occupancy"] {
            if let Some(hs) = snap.hists.get(&format!("svc.shard{i}.{h}")) {
                let s = hs.summary();
                report.push(&structure, &op, &format!("{h}_p50"), s.p50 as f64);
                report.push(&structure, &op, &format!("{h}_max"), s.max as f64);
            }
        }
    }
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let gate = args.flag("gate");
    // Full-run sizing note: the 1-shard baseline is *supposed* to be slow
    // (every descent pays the remote penalty on ~3/4 of its accesses, and
    // descents lengthen with the record count), so the grid cost is
    // dominated by the baseline rows. 50k records keeps the full run in
    // minutes while the locality effect is already >5x.
    let records = args.u64("records", if smoke { 20_000 } else { 50_000 });
    let ops = args.u64("ops", if smoke { 60_000 } else { 40_000 });
    let nodes: u16 = args.u64("nodes", 4) as u16;
    let shard_counts: Vec<u16> = args
        .usize_list("shards", if smoke { "1,2,4" } else { "1,2,4,8" })
        .into_iter()
        .map(|s| s as u16)
        .collect();
    let client_counts = args.usize_list("clients", if smoke { "256" } else { "64,256" });
    let rates: Vec<u64> = match args.get("rates") {
        Some(r) => r
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| s.parse().expect("--rates must be integers"))
            .collect(),
        None => Vec::new(),
    };
    let driver_threads = args.usize("threads", 4);
    let remote_spins = args.u64("remote-spins", 64) as u32;
    let multi_every = args.usize("multi-every", 16);
    let multi_size = args.usize("multi-size", 8);
    let gate_ratio: f64 = args
        .get("gate-ratio")
        .map(|v| v.parse().expect("--gate-ratio must be a float"))
        .unwrap_or(if smoke { 1.3 } else { 1.8 });

    let cfg = Config {
        records,
        nodes,
        remote_spins,
        max_batch: args.usize("batch", 64),
        queue_cap: args.usize("queue-cap", 8192),
    };

    // One trace for every configuration: requests must be identical
    // across shard counts for the comparison to mean anything.
    let w = ycsb::generate(WORKLOAD_B_UNIFORM, records, ops, 1, 42);
    let trace = loadgen::requests_from_ops(&w.ops[0], multi_every, multi_size);
    let warmup = &trace[..trace.len() / 10];

    let mut report = MetricsReport::new("serving");
    report.meta("records", records.to_string());
    report.meta("ops", ops.to_string());
    report.meta("nodes", nodes.to_string());
    report.meta("remote_spins", remote_spins.to_string());
    report.meta("workload", WORKLOAD_B_UNIFORM.name.to_string());
    report.meta("multi_every", multi_every.to_string());
    report.meta("multi_size", multi_size.to_string());

    println!("mode,shards,load,mops,p50_ns,p95_ns,p99_ns");
    // Closed-loop throughput at the max client level, per shard count —
    // the gate compares max shards vs 1 shard.
    let mut gate_mops: Vec<(u16, f64)> = Vec::new();
    for &shards in &shard_counts {
        let lists = build_shards(&cfg, shards);
        preload(&lists, nodes, &w.load);
        let svc = start_service(&cfg, lists);
        let _ = loadgen::run_closed(&svc, warmup, 64, driver_threads.min(2));
        for &clients in &client_counts {
            // Median of three: single runs are noisy on shared hosts.
            let mut runs: Vec<(LoadResult, HistSummary)> = (0..3)
                .map(|_| {
                    measure(&svc, &trace, |svc, t| {
                        loadgen::run_closed(svc, t, clients, driver_threads)
                    })
                })
                .collect();
            runs.sort_by(|a, b| a.0.mops().partial_cmp(&b.0.mops()).unwrap());
            let (res, lat) = &runs[1];
            push_row(&mut report, "closed", shards, clients as u64, res, lat);
            if clients == *client_counts.last().unwrap() {
                gate_mops.push((shards, res.mops()));
            }
        }
        for &rate in &rates {
            let (res, lat) = measure(&svc, &trace, |svc, t| {
                loadgen::run_open(svc, t, rate, driver_threads)
            });
            push_row(&mut report, "open", shards, rate, &res, &lat);
        }
        push_shard_metrics(&mut report, &svc, shards);
        svc.shutdown();
    }

    if let Some(path) = args.get("json") {
        bench::metrics::write_report(&report, path);
    }
    if let Some(path) = args.get("csv") {
        bench::metrics::write_report(&report, path);
    }

    let base = gate_mops.iter().find(|(s, _)| *s == 1).map(|&(_, m)| m);
    let best = gate_mops.iter().max_by_key(|&&(s, _)| s);
    if let (Some(base), Some(&(shards, top))) = (base, best) {
        if shards > 1 {
            let ratio = top / base;
            eprintln!(
                "serving: {shards}-shard/1-shard closed-loop speedup {ratio:.2}x \
                 ({top:.4} vs {base:.4} Mops, remote_spins {remote_spins})"
            );
            if gate && ratio < gate_ratio {
                eprintln!("serving: FAIL — speedup {ratio:.2} under the {gate_ratio} gate");
                std::process::exit(1);
            }
        }
    } else if gate {
        eprintln!("serving: FAIL — gate needs both a 1-shard and a multi-shard run");
        std::process::exit(1);
    }
}
