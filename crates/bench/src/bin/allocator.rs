//! E13 — allocation fast path and fence budget: fences per operation with
//! the per-thread lease magazine off vs on.
//!
//! Inserts run at `keys_per_node = 1`, so every insert allocates and
//! publishes a fresh node through the prepare-then-publish flush epoch:
//! one coalesced pre-publish sweep fence, plus a lease-log fence only on
//! magazine misses. The budget that gates CI is therefore *absolute* —
//! `--gate` fails if the magazine-on run spends more than `--gate-fences`
//! (default 2.0) fences per insert, or if the dynamic detector's PMD02
//! probe catches a redundant (empty) fence on the insert path. The off/on
//! reduction is still reported for trend eyeballing.
//!
//! ```text
//! cargo run --release -p bench --bin allocator -- \
//!     --records 20000 --magazine 8 --json results/BENCH_allocator.json
//! cargo run --release -p bench --bin allocator -- --smoke --gate   # CI
//! ```
//!
//! Output also records fences/flushes per `get` and `remove` (tagged
//! phases over the same keys) and the PMD02 redundant-fence tally per op
//! kind from a small `PmCheckLevel::Track` probe.

use std::sync::Arc;

use bench::metrics::{pmd02_probe, push_pmd02_rows};
use bench::{build_upskiplist, Args, Deployment, UpSkipListOpts};
use obs::report::MetricsReport;
use obs::ObsLevel;
use pmem::stats::OP_KINDS;
use pmem::{op_tag, OpKind, StatsSnapshot};
use upskiplist::UpSkipList;

/// splitmix64 — deterministic key shuffle without the rand crate.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

struct RunOut {
    /// Per-op pmem deltas, indexed by `OpKind as usize`.
    by_op: [StatsSnapshot; OP_KINDS],
    /// Driver-level op counts per kind.
    ops: [u64; OP_KINDS],
    leases: u64,
    magazine_hits: u64,
    fast: u64,
    slow: u64,
}

impl RunOut {
    fn per(&self, kind: OpKind) -> (f64, f64) {
        let n = self.ops[kind as usize].max(1) as f64;
        let d = &self.by_op[kind as usize];
        (d.fences as f64 / n, d.flushes as f64 / n)
    }
    fn fences_per_insert(&self) -> f64 {
        self.per(OpKind::Insert).0
    }
}

fn opts(magazine: usize) -> UpSkipListOpts {
    UpSkipListOpts {
        keys_per_node: 1,
        magazine: Some(magazine),
        ..UpSkipListOpts::default()
    }
}

/// Insert `records` distinct keys in a mixed order across `threads`
/// registered threads (every insert is a fresh node at keys_per_node = 1),
/// then a tagged get pass and a tagged remove pass over the same keys;
/// return per-op pmem costs.
fn run_one(magazine: usize, records: u64, threads: usize) -> RunOut {
    let d = Deployment {
        obs: ObsLevel::Counters,
        ..Deployment::simple(records)
    };
    let list: Arc<UpSkipList> = build_upskiplist(&d, opts(magazine));
    let before = list.space().stats_by_op();
    let each_phase = |kind: OpKind| {
        std::thread::scope(|s| {
            for t in 0..threads {
                let list = Arc::clone(&list);
                s.spawn(move || {
                    pmem::thread::register(t, 0);
                    let _tag = op_tag(kind);
                    let mut i = t as u64;
                    while i < records {
                        let key = mix64(i + 1) | 1;
                        match kind {
                            OpKind::Insert => {
                                list.insert(key, i);
                            }
                            OpKind::Get => {
                                std::hint::black_box(list.get(key));
                            }
                            OpKind::Remove => {
                                list.remove(key);
                            }
                            _ => unreachable!(),
                        }
                        i += threads as u64;
                    }
                    // Ack boundary: fence this thread's deferred publish
                    // lines inside the tag so the kind's bucket pays its
                    // full durability cost (a no-op when nothing pends).
                    list.sync();
                });
            }
        });
    };
    each_phase(OpKind::Insert);
    each_phase(OpKind::Get);
    each_phase(OpKind::Remove);
    let after = list.space().stats_by_op();
    let m = list.struct_metrics();
    let mut by_op = [StatsSnapshot::default(); OP_KINDS];
    for (i, b) in by_op.iter_mut().enumerate() {
        *b = after[i].since(&before[i]);
    }
    let mut ops = [0u64; OP_KINDS];
    for kind in [OpKind::Insert, OpKind::Get, OpKind::Remove] {
        ops[kind as usize] = records;
    }
    RunOut {
        by_op,
        ops,
        leases: m.alloc.leases,
        magazine_hits: m.alloc.magazine_hits,
        fast: m.alloc.fast_allocs,
        slow: m.alloc.slow_allocs,
    }
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let records = args.u64("records", if smoke { 8_000 } else { 50_000 });
    let threads = args.usize("threads", if smoke { 2 } else { 4 });
    let magazine = args.usize("magazine", 8);
    let gate = args.flag("gate");
    let gate_fences: f64 = args
        .get("gate-fences")
        .map(|v| v.parse().expect("--gate-fences must be a float"))
        .unwrap_or(2.0);

    let mut report = MetricsReport::new("allocator");
    report.meta("records", records.to_string());
    report.meta("threads", threads.to_string());
    report.meta("magazine", magazine.to_string());

    let off = run_one(0, records, threads);
    let on = run_one(magazine, records, threads);

    // PMD02 probe: single-threaded Track-level run per configuration; an
    // empty fence attributed to insert means a path inside the prepare
    // window still fences individually.
    let probe_records = (records / 10).max(500);
    let mut insert_pmd02 = 0u64;
    for (name, m) in [("magazine_off", 0), ("magazine_on", magazine)] {
        let (pmd02, pops) = pmd02_probe(opts(m), probe_records);
        push_pmd02_rows(&mut report, name, &pmd02, &pops);
        if name == "magazine_on" {
            insert_pmd02 = pmd02[OpKind::Insert as usize];
        }
        eprintln!(
            "{name}: pmd02 redundant fences — insert {} get {} remove {} \
             (probe of {probe_records} records)",
            pmd02[OpKind::Insert as usize],
            pmd02[OpKind::Get as usize],
            pmd02[OpKind::Remove as usize],
        );
    }

    for (name, r) in [("magazine_off", &off), ("magazine_on", &on)] {
        for kind in [OpKind::Insert, OpKind::Get, OpKind::Remove] {
            let (fences, flushes) = r.per(kind);
            let op = kind.name();
            report.push(name, op, "fences_per_op", fences);
            report.push(name, op, "flushes_per_op", flushes);
        }
        // Back-compat aliases consumed by the report tooling.
        report.push(name, "insert", "fences_per_insert", r.per(OpKind::Insert).0);
        report.push(
            name,
            "insert",
            "flushes_per_insert",
            r.per(OpKind::Insert).1,
        );
        report.push(name, "alloc", "leases", r.leases as f64);
        report.push(name, "alloc", "magazine_hits", r.magazine_hits as f64);
        report.push(name, "alloc", "fast_allocs", r.fast as f64);
        report.push(name, "alloc", "slow_allocs", r.slow as f64);
        let (gf, _) = r.per(OpKind::Get);
        let (rf, _) = r.per(OpKind::Remove);
        eprintln!(
            "{name}: {:.3} fences/insert, {:.3} flushes/insert, \
             {gf:.3} fences/get, {rf:.3} fences/remove \
             (leases {}, magazine hits {}, fast {}, slow {})",
            r.per(OpKind::Insert).0,
            r.per(OpKind::Insert).1,
            r.leases,
            r.magazine_hits,
            r.fast,
            r.slow
        );
    }
    let reduction = 1.0 - on.fences_per_insert() / off.fences_per_insert();
    report.push("magazine_on", "insert", "fence_reduction", reduction);
    eprintln!(
        "allocator: magazine {magazine} cuts fences per insert by {:.1} % \
         ({:.3} -> {:.3}); budget {gate_fences:.1}",
        reduction * 100.0,
        off.fences_per_insert(),
        on.fences_per_insert()
    );

    print!("{}", report.to_csv());
    if let Some(path) = args.get("json") {
        bench::metrics::write_report(&report, path);
    }
    if let Some(path) = args.get("csv") {
        bench::metrics::write_report(&report, path);
    }

    if gate {
        let mut fail = false;
        if on.fences_per_insert() > gate_fences {
            eprintln!(
                "allocator: FAIL — {:.3} fences/insert over the absolute \
                 {gate_fences} budget",
                on.fences_per_insert()
            );
            fail = true;
        }
        if insert_pmd02 > 0 {
            eprintln!(
                "allocator: FAIL — {insert_pmd02} redundant (empty) fences \
                 attributed to the insert path; the flush epoch must skip \
                 no-op sweeps"
            );
            fail = true;
        }
        if fail {
            std::process::exit(1);
        }
    }
}
