//! E13 — allocation fast path: fences per insert with the per-thread
//! lease magazine off vs on.
//!
//! The lease fast path replaces the per-pop persisted log (one fence),
//! head-persist (one fence), and stamp-persist (one fence) with one
//! `LOG_LEASE` + multi-pop + stamp sequence per `M` blocks, so an
//! insert-heavy workload at `keys_per_node = 1` (every insert allocates a
//! node) should spend ≥30 % fewer fences per insert.
//!
//! ```text
//! cargo run --release -p bench --bin allocator -- \
//!     --records 20000 --magazine 8 --json results/BENCH_allocator.json
//! cargo run --release -p bench --bin allocator -- --smoke --gate   # CI
//! ```
//!
//! `--gate` exits nonzero if the reduction falls under `--gate-ratio`
//! (default 0.30) or if the magazine-off run regressed against itself
//! being the plain Function-4 path (sanity: off-path fence count is
//! reported for eyeballing, not gated).

use std::sync::Arc;

use bench::{build_upskiplist, Args, Deployment, UpSkipListOpts};
use obs::report::MetricsReport;
use obs::ObsLevel;
use upskiplist::UpSkipList;

/// splitmix64 — deterministic key shuffle without the rand crate.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

struct RunOut {
    fences_per_insert: f64,
    flushes_per_insert: f64,
    leases: u64,
    magazine_hits: u64,
    fast: u64,
    slow: u64,
}

/// Insert `records` distinct keys in a mixed order across `threads`
/// registered threads; return per-insert pmem fence/flush costs.
fn run_one(magazine: usize, records: u64, threads: usize) -> RunOut {
    let d = Deployment {
        obs: ObsLevel::Counters,
        ..Deployment::simple(records)
    };
    let list: Arc<UpSkipList> = build_upskiplist(
        &d,
        UpSkipListOpts {
            keys_per_node: 1,
            magazine: Some(magazine),
            ..UpSkipListOpts::default()
        },
    );
    let before = list.space().stats_snapshot();
    std::thread::scope(|s| {
        for t in 0..threads {
            let list = Arc::clone(&list);
            s.spawn(move || {
                pmem::thread::register(t, 0);
                let mut i = t as u64;
                while i < records {
                    // Distinct keys in shuffled order: every insert is a
                    // fresh node at keys_per_node = 1.
                    let key = mix64(i + 1) | 1;
                    list.insert(key, i);
                    i += threads as u64;
                }
            });
        }
    });
    let after = list.space().stats_snapshot();
    let m = list.struct_metrics();
    RunOut {
        fences_per_insert: (after.fences - before.fences) as f64 / records as f64,
        flushes_per_insert: (after.flushes - before.flushes) as f64 / records as f64,
        leases: m.alloc.leases,
        magazine_hits: m.alloc.magazine_hits,
        fast: m.alloc.fast_allocs,
        slow: m.alloc.slow_allocs,
    }
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let records = args.u64("records", if smoke { 8_000 } else { 50_000 });
    let threads = args.usize("threads", if smoke { 2 } else { 4 });
    let magazine = args.usize("magazine", 8);
    let gate = args.flag("gate");
    let gate_ratio: f64 = args
        .get("gate-ratio")
        .map(|v| v.parse().expect("--gate-ratio must be a float"))
        .unwrap_or(0.30);

    let mut report = MetricsReport::new("allocator");
    report.meta("records", records.to_string());
    report.meta("threads", threads.to_string());
    report.meta("magazine", magazine.to_string());

    let off = run_one(0, records, threads);
    let on = run_one(magazine, records, threads);

    for (name, r) in [("magazine_off", &off), ("magazine_on", &on)] {
        report.push(name, "insert", "fences_per_insert", r.fences_per_insert);
        report.push(name, "insert", "flushes_per_insert", r.flushes_per_insert);
        report.push(name, "alloc", "leases", r.leases as f64);
        report.push(name, "alloc", "magazine_hits", r.magazine_hits as f64);
        report.push(name, "alloc", "fast_allocs", r.fast as f64);
        report.push(name, "alloc", "slow_allocs", r.slow as f64);
        eprintln!(
            "{name}: {:.3} fences/insert, {:.3} flushes/insert \
             (leases {}, magazine hits {}, fast {}, slow {})",
            r.fences_per_insert, r.flushes_per_insert, r.leases, r.magazine_hits, r.fast, r.slow
        );
    }
    let reduction = 1.0 - on.fences_per_insert / off.fences_per_insert;
    report.push("magazine_on", "insert", "fence_reduction", reduction);
    eprintln!(
        "allocator: magazine {magazine} cuts fences per insert by {:.1} % \
         ({:.3} -> {:.3})",
        reduction * 100.0,
        off.fences_per_insert,
        on.fences_per_insert
    );

    print!("{}", report.to_csv());
    if let Some(path) = args.get("json") {
        bench::metrics::write_report(&report, path);
    }
    if let Some(path) = args.get("csv") {
        bench::metrics::write_report(&report, path);
    }

    if gate && reduction < gate_ratio {
        eprintln!(
            "allocator: FAIL — fence reduction {:.3} under the {gate_ratio} gate",
            reduction
        );
        std::process::exit(1);
    }
}
