//! E12 — adversarial crash-residue sweep (Chapter 6 extension).
//!
//! Walks a grid of `(crash point × seed × residue policy)` states over the
//! recoverable structures, with a nested crash injected *during recovery*,
//! and verifies acked-operation durability, structural invariants, and
//! recovery idempotence at every state. Failing states print a one-line
//! `(crash_after, seed, policy)` repro tuple after minimization.
//!
//! ```text
//! crash_sweep --smoke                      # CI preset: ≥200 states, fixed seeds
//! crash_sweep --points 24 --seeds 4 \
//!             --residue-seeds 4 --ops 64   # deeper local run
//! crash_sweep --structures upskiplist,pmwcas --no-nested
//! crash_sweep --smoke --pmcheck          # + dynamic persist-ordering detector
//! crash_sweep --smoke --crash-in-epoch   # + epoch-boundary points (PreSweep /
//!                                        #   PostSweep: die mid-prepare and
//!                                        #   between sweep and publish CAS)
//! ```

use bench::args::Args;
use bench::sweep::{
    standard_plans, sweep, sweep_epoch_points, AllocSubject, PmwcasSubject, SkipListSubject,
    SweepConfig, SweepOutcome, TxSubject,
};

fn main() {
    pmem::crash::silence_crash_panics();
    let args = Args::parse();
    let smoke = args.flag("smoke");

    let points = args.usize("points", if smoke { 12 } else { 16 });
    let num_seeds = args.u64("seeds", if smoke { 1 } else { 2 });
    let residue_seeds = args.u64("residue-seeds", 2);
    let ops = args.u64("ops", if smoke { 32 } else { 48 });
    let nested = !args.flag("no-nested");
    let pmcheck = args.flag("pmcheck");
    let crash_in_epoch = args.flag("crash-in-epoch");
    let structures = args.list("structures", "upskiplist,pmalloc,pmalloc-mag,pmwcas,pmemtx");

    let cfg = SweepConfig {
        points,
        seeds: (1..=num_seeds).collect(),
        plans: standard_plans(residue_seeds),
        nested,
        ops,
        pmcheck,
    };
    println!(
        "crash_sweep: {} structures x {} points x {} seeds x {} policies \
         (nested crash-during-recovery: {}, pmcheck: {})",
        structures.len(),
        cfg.points,
        cfg.seeds.len(),
        cfg.plans.len(),
        if nested { "on" } else { "off" },
        if pmcheck { "track" } else { "off" }
    );

    let mut outcomes: Vec<SweepOutcome> = Vec::new();
    for s in &structures {
        let out = match s.as_str() {
            "upskiplist" => sweep("upskiplist", &|seed| SkipListSubject::new(seed, ops), &cfg),
            "pmalloc" => sweep("pmalloc", &|seed| AllocSubject::new(seed, ops), &cfg),
            // Lease fast path on: crash points land inside lease
            // acquisition, mid-magazine runs, and outbox flushes.
            "pmalloc-mag" => sweep(
                "pmalloc-mag",
                &|seed| AllocSubject::with_magazine(seed, ops),
                &cfg,
            ),
            "pmwcas" => sweep("pmwcas", &|seed| PmwcasSubject::new(seed, ops / 2), &cfg),
            "pmemtx" => sweep("pmemtx", &|seed| TxSubject::new(seed, ops / 2), &cfg),
            other => {
                eprintln!("unknown structure: {other}");
                std::process::exit(2);
            }
        };
        if pmcheck {
            println!(
                "  {:<12} {:>5} states  {:>3} failures  {:>4} pmcheck advisories",
                out.name,
                out.states,
                out.failures.len(),
                out.advisories
            );
        } else {
            println!(
                "  {:<12} {:>5} states  {:>3} failures",
                out.name,
                out.states,
                out.failures.len()
            );
        }
        outcomes.push(out);
    }

    if crash_in_epoch {
        // Epoch-boundary states: the victim op dies mid-prepare (PreSweep)
        // or with its node durable but unpublished (PostSweep); recovery
        // must show no trace of it and still serve allocations.
        let out = sweep_epoch_points(&cfg);
        println!(
            "  {:<12} {:>5} states  {:>3} failures  ({} fired an epoch point)",
            out.name,
            out.states,
            out.failures.len(),
            out.fired
        );
        if out.fired == 0 {
            eprintln!("crash_sweep: --crash-in-epoch never fired — grid too sparse");
            std::process::exit(1);
        }
        outcomes.push(out);
    }

    let states: u64 = outcomes.iter().map(|o| o.states).sum();
    let failures: usize = outcomes.iter().map(|o| o.failures.len()).sum();
    if pmcheck {
        let advisories: u64 = outcomes.iter().map(|o| o.advisories).sum();
        println!(
            "crash_sweep: {states} states explored, {failures} failures, \
             {advisories} pmcheck advisories"
        );
    } else {
        println!("crash_sweep: {states} states explored, {failures} failures");
    }
    if failures > 0 {
        for o in &outcomes {
            for f in &o.failures {
                println!("  {f}");
            }
        }
        std::process::exit(1);
    }
}
