//! E7/E9 — Chapter 6: black-box crash testing with strict-linearizability
//! analysis.
//!
//! Each trial prepopulates a small keyspace (the thesis uses 50 000 keys,
//! 20 000 prepopulated, to maximize cross-thread key collisions), runs an
//! insert-heavy workload across worker threads, injects a power failure at
//! a random pmem-operation count, recovers, runs a second phase that
//! re-reads and re-writes the same keys, and feeds the merged operation
//! logs (with the crash tick) to the `lincheck` analyzer.
//!
//! `--structure upskiplist|bztree|pmdkskip` selects the subject (E9
//! extension — the thesis only crash-tests UPSkipList). Expectations:
//! UPSkipList and BzTree are strictly linearizable (BzTree's PMwCAS
//! dirty-bit reads refuse unpersisted values); the PMDK lock-based list is
//! *expected* to show violations occasionally, because libpmemobj
//! transactions do not isolate readers (§3.1) — a reader can observe an
//! uncommitted value that a crash rolls back.
//!
//! `--corrupt` reproduces the thesis's analyzer sanity check (§6.3):
//! read values are corrupted at random and every corruption must be
//! flagged.

use std::sync::{Arc, Mutex};

use bench::{build_bztree, build_pmdkskip, Args, Deployment, KvIndex};
use lincheck::{merge, OpKind, ThreadLog, Ticket, EMPTY};
use pmem::{run_crashable, CrashController, Pool};
use rand::{Rng, SeedableRng};

/// A crash-testable subject: an index plus the hooks to power-cycle it.
struct Subject {
    name: &'static str,
    index: Arc<dyn KvIndex>,
    pools: Vec<Arc<Pool>>,
    controller: Arc<CrashController>,
    /// Re-open after `simulate_crash` on every pool; returns the new index.
    #[allow(clippy::type_complexity)]
    reopen: Box<dyn Fn(&[Arc<Pool>]) -> Arc<dyn KvIndex>>,
}

impl Subject {
    fn build(name: &str, keyspace: u64, sorted: bool, evict: bool) -> Subject {
        let d = Deployment {
            tracked: true,
            ..Deployment::simple(keyspace)
        };
        match name {
            "upskiplist" => {
                let list = bench::build_upskiplist(
                    &d,
                    bench::UpSkipListOpts {
                        keys_per_node: 16,
                        sorted_lookups: sorted,
                        evict_one_in: if evict { 4 } else { 0 },
                        ..Default::default()
                    },
                );
                let pools = list.space().pools().to_vec();
                let controller = Arc::clone(pools[0].crash_controller());
                let l2 = Arc::clone(&list);
                Subject {
                    name: "upskiplist",
                    index: list,
                    pools,
                    controller,
                    reopen: Box::new(move |_| {
                        l2.recover();
                        Arc::clone(&l2) as Arc<dyn KvIndex>
                    }),
                }
            }
            "bztree" => {
                let tree = build_bztree(&d, 20_000);
                let pools = vec![Arc::clone(tree.pool())];
                let controller = Arc::clone(pools[0].crash_controller());
                Subject {
                    name: "bztree",
                    index: tree,
                    pools,
                    controller,
                    reopen: Box::new(|pools| {
                        let (tree, _stats) = bztree::BzTree::open(Arc::clone(&pools[0]));
                        tree as Arc<dyn KvIndex>
                    }),
                }
            }
            "pmdkskip" => {
                let list = build_pmdkskip(&d);
                let pools = vec![Arc::clone(list.pool())];
                let controller = Arc::clone(pools[0].crash_controller());
                Subject {
                    name: "pmdkskip",
                    index: list,
                    pools,
                    controller,
                    reopen: Box::new(|pools| {
                        let (list, _rolled) = pmdkskip::PmdkSkipList::open(Arc::clone(&pools[0]));
                        list as Arc<dyn KvIndex>
                    }),
                }
            }
            other => panic!("unknown structure {other}"),
        }
    }
}

struct PhaseConfig {
    keyspace: u64,
    ops: u64,
    read_pct: u32,
}

/// Run one workload phase; each thread logs its ops. Returns the logs.
fn phase(
    index: &Arc<dyn KvIndex>,
    ticket: &Ticket,
    threads: usize,
    cfg: &PhaseConfig,
    seed: u64,
    thread_base: u32,
) -> Vec<ThreadLog> {
    let logs = Arc::new(Mutex::new(Vec::new()));
    std::thread::scope(|s| {
        for t in 0..threads {
            let index = Arc::clone(index);
            let logs = Arc::clone(&logs);
            s.spawn(move || {
                pmem::thread::register(t, 0);
                let mut log = ThreadLog::new(thread_base + t as u32);
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ (t as u64) << 32);
                for _ in 0..cfg.ops {
                    let key = rng.gen_range(1..=cfg.keyspace);
                    if rng.gen_range(0..100) < cfg.read_pct {
                        let idx = log.begin(ticket, OpKind::Read, key, 0);
                        match run_crashable(|| index.get(key)) {
                            Ok(v) => log.finish(ticket, idx, v.unwrap_or(EMPTY)),
                            Err(_) => break, // pending at crash
                        }
                    } else {
                        let value = ticket.next();
                        let idx = log.begin(ticket, OpKind::Write, key, value);
                        // A write acks (logs as completed) only at the
                        // sync fence: the publish link is flush-deferred,
                        // so a crash between insert and sync leaves the
                        // op pending — either outcome satisfies strict
                        // linearizability.
                        match run_crashable(|| {
                            let old = index.insert(key, value);
                            index.sync();
                            old
                        }) {
                            Ok(old) => log.finish(ticket, idx, old.unwrap_or(EMPTY)),
                            Err(_) => break,
                        }
                    }
                }
                pmem::discard_pending();
                logs.lock().unwrap().push(log);
            });
        }
    });
    Arc::try_unwrap(logs).unwrap().into_inner().unwrap()
}

fn main() {
    pmem::crash::silence_crash_panics();
    let args = Args::parse();
    let trials = args.u64("trials", 30);
    let threads = args.usize("threads", 8);
    let keyspace = args.u64("keyspace", 5_000);
    let prepop = args.u64("prepop", 2_000);
    let ops = args.u64("ops", 5_000);
    let corrupt = args.flag("corrupt");
    let structure = args.get("structure").unwrap_or("upskiplist").to_string();
    let sorted = args.flag("sorted");
    let evict = args.flag("evict");

    let mut linearizable = 0u64;
    let mut violations_found = 0u64;
    for trial in 0..trials {
        let subject = Subject::build(&structure, keyspace, sorted, evict);
        let ticket = Ticket::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(trial);

        // Prepopulate (logged, so initial values are known to the
        // analyzer, §6.1.1).
        let mut setup_log = ThreadLog::new(u32::MAX);
        for k in 1..=prepop {
            let v = ticket.next();
            let idx = setup_log.begin(&ticket, OpKind::Write, k, v);
            let old = subject.index.insert(k, v);
            setup_log.finish(&ticket, idx, old.unwrap_or(EMPTY));
        }
        // The prepopulated writes are logged as completed: fence their
        // deferred publish lines before crash injection arms.
        subject.index.sync();

        // Phase 1: insert-heavy, interrupted by a power failure at a
        // random operation count.
        subject.controller.arm_after(rng.gen_range(50_000..500_000));
        let mut logs = phase(
            &subject.index,
            &ticket,
            threads,
            &PhaseConfig {
                keyspace,
                ops,
                read_pct: 20,
            },
            trial * 7 + 1,
            0,
        );
        let crashed = subject.controller.is_crashed();
        subject.controller.disarm();
        let crash_tick = ticket.next();
        for pool in &subject.pools {
            pool.simulate_crash();
        }
        let index2 = (subject.reopen)(&subject.pools);

        // Phase 2: re-read and re-write the same keyspace (§6.1.2).
        let logs2 = phase(
            &index2,
            &ticket,
            threads,
            &PhaseConfig {
                keyspace,
                ops,
                read_pct: 60,
            },
            trial * 7 + 2,
            1000,
        );
        logs.push(setup_log);
        logs.extend(logs2);
        let mut history = merge(logs, if crashed { vec![crash_tick] } else { vec![] });

        if corrupt {
            // Thesis §6.3 sanity check: flip a few read return values.
            let mut corrupted = 0;
            for op in history.ops.iter_mut() {
                if matches!(op.kind, OpKind::Read)
                    && op.ret != lincheck::PENDING
                    && op.ret != EMPTY
                    && corrupted < 3
                    && rand::Rng::gen_bool(&mut rng, 0.01)
                {
                    op.ret = op.ret.wrapping_add(0xdead);
                    corrupted += 1;
                }
            }
            if corrupted == 0 {
                if let Some(op) = history.ops.iter_mut().find(|o| {
                    matches!(o.kind, OpKind::Read) && o.ret != EMPTY && o.ret != lincheck::PENDING
                }) {
                    op.ret = op.ret.wrapping_add(0xdead);
                }
            }
        }

        let result = lincheck::check(&history);
        let ok = result.is_linearizable();
        if !ok && args.flag("dump") {
            for v in &result.violations {
                eprintln!("--- key {} (crash tick {crash_tick}) ---", v.key);
                let mut ops: Vec<_> = history.ops.iter().filter(|o| o.key == v.key).collect();
                ops.sort_by_key(|o| o.start);
                for o in ops {
                    eprintln!(
                        "  t{:<4} {:?} arg={} ret={} [{}..{}]",
                        o.thread,
                        o.kind,
                        o.arg,
                        if o.ret == lincheck::PENDING {
                            u64::MAX
                        } else {
                            o.ret
                        },
                        o.start,
                        o.end,
                    );
                }
            }
        }
        println!(
            "trial {trial} [{}]: crashed={crashed} ops={} pending={} keys={} -> {}",
            subject.name,
            history.ops.len(),
            history.pending_count(),
            result.keys_checked,
            if ok {
                "strictly linearizable".to_string()
            } else {
                format!(
                    "{} violations, {} inconclusive (e.g. {:?})",
                    result.violations.len(),
                    result.inconclusive_keys,
                    result.violations.first().map(|v| &v.reason)
                )
            }
        );
        if ok {
            linearizable += 1;
        } else {
            violations_found += 1;
        }
    }
    println!();
    println!(
        "{structure}: {linearizable}/{trials} trials strictly linearizable, {violations_found} with violations{}",
        if corrupt { " (corruption mode: violations are EXPECTED)" } else { "" }
    );
    if corrupt {
        assert!(
            violations_found > 0,
            "the analyzer failed to flag injected corruption"
        );
    } else if structure != "pmdkskip" {
        // The PMDK baseline is *expected* to violate occasionally: its
        // transactions do not isolate readers (§3.1).
        assert_eq!(
            violations_found, 0,
            "{structure} produced a non-linearizable history"
        );
    }
}
