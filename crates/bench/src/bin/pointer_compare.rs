//! E3 — Figure 5.3: read-only throughput of UPSkipList with a single key
//! per node (one-word extended-RIV pointers) vs the lock-based skip list
//! (libpmemobj-style two-word fat pointers).
//!
//! Both structures have identical shape here (one key per node, same
//! height distribution); the pointer representation is the variable. The
//! thesis measures fat pointers reaching ≈70% of RIV throughput.
//!
//! Emits CSV: `structure,threads,mops`.

use std::sync::Arc;

use bench::{build_pmdkskip, build_upskiplist, Args, Deployment, KvIndex, UpSkipListOpts};
use ycsb::WORKLOAD_C;

fn main() {
    let args = Args::parse();
    let records = args.u64("records", 100_000);
    let ops = args.u64("ops", 400_000);
    let threads = if args.get("threads").is_some() {
        args.usize_list("threads", "")
    } else {
        bench::default_thread_sweep()
    };

    println!("structure,threads,mops");
    for t in &threads {
        let w = ycsb::generate(WORKLOAD_C, records, ops, *t, 42);
        let d = Deployment::simple(records);
        let riv: Arc<dyn KvIndex> = build_upskiplist(&d, UpSkipListOpts::keys_per_node(1));
        let fat: Arc<dyn KvIndex> = build_pmdkskip(&d);
        for (name, index) in [("riv_single_key", &riv), ("fat_pointers", &fat)] {
            bench::load(index, &w, (*t).max(4), 1);
            let _ = bench::run(index, &w, 1, false, "warmup");
            let r = bench::run(index, &w, 1, false, name);
            println!("{},{},{:.4}", name, t, r.mops());
        }
    }
}
