//! Workload playback: pre-load, warm-up, timed run, latency capture.
//!
//! Mirrors the thesis's methodology (§5.1.2): workloads are generated up
//! front and played back by driver threads pinned round-robin to NUMA
//! nodes; throughput is measured over the whole run after a warm-up pass,
//! and latencies are captured per operation type.

use std::sync::Arc;
use std::time::Instant;

use obs::{Histogram, Registry};
use pmem::{op_tag, OpKind};
use ycsb::{Op, Workload};

use crate::index::KvIndex;

/// Result of one measured run.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub structure: &'static str,
    pub workload: &'static str,
    pub threads: usize,
    pub ops: u64,
    pub seconds: f64,
    /// Per-op latencies in nanoseconds, by type, when requested.
    pub read_latencies: Vec<u64>,
    pub update_latencies: Vec<u64>,
    pub insert_latencies: Vec<u64>,
}

impl RunResult {
    pub fn mops(&self) -> f64 {
        self.ops as f64 / self.seconds / 1e6
    }
}

/// Extract the value at a percentile (0.0–100.0) from a latency sample.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Pre-load the structure (phase 1), threads striped over NUMA nodes.
pub fn load<I: KvIndex + ?Sized>(
    index: &Arc<I>,
    workload: &Workload,
    threads: usize,
    numa_nodes: u16,
) {
    let chunk = workload.load.len().div_ceil(threads);
    std::thread::scope(|s| {
        for (t, part) in workload.load.chunks(chunk.max(1)).enumerate() {
            let index = Arc::clone(index);
            s.spawn(move || {
                pmem::thread::register(t, (t as u16) % numa_nodes.max(1));
                for &(k, v) in part {
                    index.insert(k, v);
                }
            });
        }
    });
}

/// Play back the run phase and measure. `capture_latency` switches on
/// per-op timing (used by the latency experiment; it adds overhead, so the
/// throughput experiments leave it off).
pub fn run<I: KvIndex + ?Sized>(
    index: &Arc<I>,
    workload: &Workload,
    numa_nodes: u16,
    capture_latency: bool,
    structure: &'static str,
) -> RunResult {
    let threads = workload.ops.len();
    let started = Instant::now();
    let mut lat: Vec<(Vec<u64>, Vec<u64>, Vec<u64>)> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = workload
            .ops
            .iter()
            .enumerate()
            .map(|(t, trace)| {
                let index = Arc::clone(index);
                s.spawn(move || {
                    pmem::thread::register(t, (t as u16) % numa_nodes.max(1));
                    let mut reads = Vec::new();
                    let mut updates = Vec::new();
                    let mut inserts = Vec::new();
                    for op in trace {
                        if capture_latency {
                            let t0 = Instant::now();
                            match *op {
                                Op::Read(k) => {
                                    std::hint::black_box(index.get(k));
                                    reads.push(t0.elapsed().as_nanos() as u64);
                                }
                                Op::Scan(k, n) => {
                                    std::hint::black_box(index.scan(k, n as usize));
                                    reads.push(t0.elapsed().as_nanos() as u64);
                                }
                                Op::Rmw(k, v) => {
                                    std::hint::black_box(index.get(k));
                                    index.insert(k, v);
                                    updates.push(t0.elapsed().as_nanos() as u64);
                                }
                                Op::Update(k, v) => {
                                    index.insert(k, v);
                                    updates.push(t0.elapsed().as_nanos() as u64);
                                }
                                Op::Insert(k, v) => {
                                    index.insert(k, v);
                                    inserts.push(t0.elapsed().as_nanos() as u64);
                                }
                            }
                        } else {
                            match *op {
                                Op::Read(k) => {
                                    std::hint::black_box(index.get(k));
                                }
                                Op::Scan(k, n) => {
                                    std::hint::black_box(index.scan(k, n as usize));
                                }
                                Op::Rmw(k, v) => {
                                    std::hint::black_box(index.get(k));
                                    index.insert(k, v);
                                }
                                Op::Update(k, v) | Op::Insert(k, v) => {
                                    index.insert(k, v);
                                }
                            }
                        }
                    }
                    (reads, updates, inserts)
                })
            })
            .collect();
        for h in handles {
            lat.push(h.join().expect("worker panicked"));
        }
    });
    let seconds = started.elapsed().as_secs_f64();
    let ops: u64 = workload.ops.iter().map(|t| t.len() as u64).sum();
    let mut read_latencies = Vec::new();
    let mut update_latencies = Vec::new();
    let mut insert_latencies = Vec::new();
    for (r, u, i) in lat {
        read_latencies.extend(r);
        update_latencies.extend(u);
        insert_latencies.extend(i);
    }
    read_latencies.sort_unstable();
    update_latencies.sort_unstable();
    insert_latencies.sort_unstable();
    RunResult {
        structure,
        workload: workload.spec.name,
        threads,
        ops,
        seconds,
        read_latencies,
        update_latencies,
        insert_latencies,
    }
}

/// Play back the run phase with consecutive reads grouped into
/// [`KvIndex::get_batch`] calls and consecutive writes (updates/inserts)
/// grouped into [`KvIndex::insert_batch`] calls of up to `batch`
/// operations — both through the trait, so structures with native batch
/// paths use them. A read flushes a pending write group and vice versa,
/// and scans/RMWs flush both, so per-thread program order is preserved and
/// every operation still executes exactly once. Latency capture is not
/// supported in batched mode (a batch has one timestamp, not one per op).
pub fn run_batched<I: KvIndex + ?Sized>(
    index: &Arc<I>,
    workload: &Workload,
    numa_nodes: u16,
    batch: usize,
    structure: &'static str,
) -> RunResult {
    let threads = workload.ops.len();
    let batch = batch.max(1);
    let started = Instant::now();
    std::thread::scope(|s| {
        for (t, trace) in workload.ops.iter().enumerate() {
            let index = Arc::clone(index);
            s.spawn(move || {
                pmem::thread::register(t, (t as u16) % numa_nodes.max(1));
                let mut reads: Vec<u64> = Vec::with_capacity(batch);
                let mut writes: Vec<(u64, u64)> = Vec::with_capacity(batch);
                let flush_reads = |reads: &mut Vec<u64>| {
                    if !reads.is_empty() {
                        std::hint::black_box(index.get_batch(reads));
                        reads.clear();
                    }
                };
                let flush_writes = |writes: &mut Vec<(u64, u64)>| {
                    if !writes.is_empty() {
                        std::hint::black_box(index.insert_batch(writes));
                        writes.clear();
                    }
                };
                for op in trace {
                    match *op {
                        Op::Read(k) => {
                            flush_writes(&mut writes);
                            reads.push(k);
                            if reads.len() == batch {
                                flush_reads(&mut reads);
                            }
                        }
                        Op::Update(k, v) | Op::Insert(k, v) => {
                            flush_reads(&mut reads);
                            writes.push((k, v));
                            if writes.len() == batch {
                                flush_writes(&mut writes);
                            }
                        }
                        Op::Scan(k, n) => {
                            flush_reads(&mut reads);
                            flush_writes(&mut writes);
                            std::hint::black_box(index.scan(k, n as usize));
                        }
                        Op::Rmw(k, v) => {
                            flush_reads(&mut reads);
                            flush_writes(&mut writes);
                            std::hint::black_box(index.get(k));
                            index.insert(k, v);
                        }
                    }
                }
                flush_reads(&mut reads);
                flush_writes(&mut writes);
            });
        }
    });
    let seconds = started.elapsed().as_secs_f64();
    let ops: u64 = workload.ops.iter().map(|t| t.len() as u64).sum();
    RunResult {
        structure,
        workload: workload.spec.name,
        threads,
        ops,
        seconds,
        read_latencies: Vec::new(),
        update_latencies: Vec::new(),
        insert_latencies: Vec::new(),
    }
}

/// Play back the run phase with every operation tagged for per-op pmem
/// attribution ([`pmem::op_tag`]): pool counters charge each flush, fence
/// and read to the kind of operation that issued it. When `registry` is
/// given, per-op wall latencies are recorded into its `lat.get`,
/// `lat.insert`, `lat.scan` and `lat.batch` histograms. Consecutive reads
/// group into [`KvIndex::get_batch`] calls (tagged [`OpKind::Batch`])
/// when `batch > 1`; scans are skipped on structures without a range path.
pub fn run_metrics<I: KvIndex + ?Sized>(
    index: &Arc<I>,
    workload: &Workload,
    numa_nodes: u16,
    batch: usize,
    structure: &'static str,
    registry: Option<&Registry>,
) -> RunResult {
    // Histogram slots indexed like [`latency_histograms`] names them.
    const GET: usize = 0;
    const INSERT: usize = 1;
    const SCAN: usize = 2;
    const BATCH: usize = 3;
    let hist: Option<[Arc<Histogram>; 4]> = registry.map(latency_histograms);
    let threads = workload.ops.len();
    let batch = batch.max(1);
    let started = Instant::now();
    std::thread::scope(|s| {
        for (t, trace) in workload.ops.iter().enumerate() {
            let index = Arc::clone(index);
            let hist = hist.clone();
            s.spawn(move || {
                pmem::thread::register(t, (t as u16) % numa_nodes.max(1));
                let record = |slot: usize, t0: Instant| {
                    if let Some(h) = &hist {
                        h[slot].record(t0.elapsed().as_nanos() as u64);
                    }
                };
                let mut pending: Vec<u64> = Vec::with_capacity(batch);
                for op in trace {
                    if batch > 1 {
                        if let Op::Read(k) = *op {
                            pending.push(k);
                            if pending.len() == batch {
                                let _tag = op_tag(OpKind::Batch);
                                let t0 = Instant::now();
                                std::hint::black_box(index.get_batch(&pending));
                                record(BATCH, t0);
                                pending.clear();
                            }
                            continue;
                        }
                        if !pending.is_empty() {
                            let _tag = op_tag(OpKind::Batch);
                            let t0 = Instant::now();
                            std::hint::black_box(index.get_batch(&pending));
                            record(BATCH, t0);
                            pending.clear();
                        }
                    }
                    match *op {
                        Op::Read(k) => {
                            let _tag = op_tag(OpKind::Get);
                            let t0 = Instant::now();
                            std::hint::black_box(index.get(k));
                            record(GET, t0);
                        }
                        Op::Scan(k, n) => {
                            if index.supports_scan() {
                                let _tag = op_tag(OpKind::Scan);
                                let t0 = Instant::now();
                                std::hint::black_box(index.scan(k, n as usize));
                                record(SCAN, t0);
                            }
                        }
                        Op::Rmw(k, v) => {
                            let t0 = Instant::now();
                            {
                                let _tag = op_tag(OpKind::Get);
                                std::hint::black_box(index.get(k));
                            }
                            let _tag = op_tag(OpKind::Insert);
                            index.insert(k, v);
                            record(INSERT, t0);
                        }
                        Op::Update(k, v) | Op::Insert(k, v) => {
                            let _tag = op_tag(OpKind::Insert);
                            let t0 = Instant::now();
                            index.insert(k, v);
                            record(INSERT, t0);
                        }
                    }
                }
                if !pending.is_empty() {
                    let _tag = op_tag(OpKind::Batch);
                    let t0 = Instant::now();
                    std::hint::black_box(index.get_batch(&pending));
                    record(BATCH, t0);
                }
            });
        }
    });
    let seconds = started.elapsed().as_secs_f64();
    let ops: u64 = workload.ops.iter().map(|t| t.len() as u64).sum();
    RunResult {
        structure,
        workload: workload.spec.name,
        threads,
        ops,
        seconds,
        read_latencies: Vec::new(),
        update_latencies: Vec::new(),
        insert_latencies: Vec::new(),
    }
}

/// The latency histograms [`run_metrics`] records into, in slot order.
pub fn latency_histograms(registry: &Registry) -> [Arc<Histogram>; 4] {
    [
        registry.histogram("lat.get"),
        registry.histogram("lat.insert"),
        registry.histogram("lat.scan"),
        registry.histogram("lat.batch"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{build_upskiplist, Deployment, UpSkipListOpts};
    use ycsb::{generate, WORKLOAD_A};

    #[test]
    fn percentile_extraction() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 50.0), 51);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn load_and_run_complete() {
        let d = Deployment::simple(1000);
        let idx = build_upskiplist(&d, UpSkipListOpts::default());
        let w = generate(WORKLOAD_A, 1000, 4000, 4, 1);
        load(&idx, &w, 4, 1);
        assert_eq!(idx.count_live(), 1000);
        let r = run(&idx, &w, 1, true, "upskiplist");
        assert_eq!(r.ops, 4000);
        assert!(r.mops() > 0.0);
        assert!(!r.read_latencies.is_empty());
        assert!(!r.update_latencies.is_empty());
    }

    #[test]
    fn batched_run_executes_every_op() {
        let d = Deployment::simple(1000);
        let idx = build_upskiplist(&d, UpSkipListOpts::default());
        let w = generate(WORKLOAD_A, 1000, 4000, 4, 7);
        load(&idx, &w, 4, 1);
        // Batch size chosen not to divide the per-thread op count, so the
        // trailing partial batch is exercised too.
        let r = run_batched(&idx, &w, 1, 7, "upskiplist");
        assert_eq!(r.ops, 4000);
        assert!(r.mops() > 0.0);
        idx.check_invariants();
    }

    #[test]
    fn metrics_run_attributes_pmem_work_per_op() {
        let d = Deployment::counted(1000);
        let idx = build_upskiplist(&d, UpSkipListOpts::default());
        let w = generate(WORKLOAD_A, 1000, 4000, 4, 3);
        load(&idx, &w, 4, 1);
        let before = idx.space().stats_by_op();
        let registry = Registry::new();
        let r = run_metrics(&idx, &w, 1, 1, "upskiplist", Some(&registry));
        assert_eq!(r.ops, 4000);
        let after = idx.space().stats_by_op();
        let get = after[OpKind::Get as usize].since(&before[OpKind::Get as usize]);
        let ins = after[OpKind::Insert as usize].since(&before[OpKind::Insert as usize]);
        assert!(get.reads > 0, "reads must be charged to Get");
        assert!(
            ins.writes + ins.cas_ops > 0,
            "mutations must be charged to Insert"
        );
        assert!(ins.flushes > 0, "insert persists must be charged to Insert");
        assert_eq!(get.writes + get.cas_ops, 0, "lookups never write pmem");
        let lat = latency_histograms(&registry);
        assert!(lat[0].snapshot().summary().count > 0, "lat.get recorded");
        assert!(lat[1].snapshot().summary().count > 0, "lat.insert recorded");
        idx.check_invariants();
    }

    #[test]
    fn metrics_run_batches_reads_under_the_batch_tag() {
        let d = Deployment::counted(500);
        let idx = build_upskiplist(&d, UpSkipListOpts::default());
        let w = generate(WORKLOAD_A, 500, 2000, 2, 5);
        load(&idx, &w, 2, 1);
        let before = idx.space().stats_by_op();
        run_metrics(&idx, &w, 1, 8, "upskiplist", None);
        let after = idx.space().stats_by_op();
        let batch = after[OpKind::Batch as usize].since(&before[OpKind::Batch as usize]);
        let get = after[OpKind::Get as usize].since(&before[OpKind::Get as usize]);
        assert!(batch.reads > 0, "grouped reads must be charged to Batch");
        assert_eq!(get.reads, 0, "no read escapes the batch grouping");
    }
}
