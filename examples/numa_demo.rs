//! NUMA-aware deployment: one PMEM pool per simulated NUMA node, threads
//! allocating from their local pool via extended RIV pointers (§4.3.1).
//!
//! ```text
//! cargo run --release --example numa_demo
//! ```

use upskiplist::{ListBuilder, ListConfig};

fn main() {
    let nodes: u16 = 4;
    let list = ListBuilder {
        list: ListConfig::new(16, 8),
        num_pools: nodes,
        pool_words: 1 << 21,
        latency: pmem::LatencyModel::numa_default(),
        ..ListBuilder::default()
    }
    .create();

    // Threads registered round-robin across NUMA nodes, as in the
    // evaluation setup (§5.1.2). Each allocates new nodes from its local
    // pool; the single-word RIV pointers let nodes on different pools
    // reference each other directly.
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let list = &list;
            s.spawn(move || {
                pmem::thread::register(t as usize, (t % nodes as u64) as u16);
                for i in 0..2_000u64 {
                    let k = t * 2_000 + i + 1;
                    list.insert(k, k);
                }
            });
        }
    });
    list.check_invariants();

    // Where did the data end up?
    let mut per_pool = vec![0u64; nodes as usize];
    for (pool_id, count) in list.node_distribution().into_iter().enumerate() {
        per_pool[pool_id] = count;
        println!("pool {pool_id}: {count} skip-list nodes");
    }
    let total: u64 = per_pool.iter().sum();
    let min = per_pool.iter().min().copied().unwrap_or(0);
    println!(
        "{} nodes across {} pools (min share {:.0}%)",
        total,
        nodes,
        100.0 * min as f64 * nodes as f64 / total.max(1) as f64
    );
    assert!(
        per_pool.iter().all(|&c| c > 0),
        "every pool should host nodes"
    );
}
