//! A recoverable key-value store that survives a (simulated) power
//! failure mid-workload: the thesis's headline scenario.
//!
//! Worker threads hammer the list with inserts while a crash is armed to
//! fire after a random number of persistent-memory operations. Every
//! thread dies mid-operation; the pool reverts to exactly what had been
//! explicitly persisted; recovery is a constant-time epoch bump; and every
//! acknowledged insert is still there.
//!
//! ```text
//! cargo run --release --example kvstore
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use upskiplist::{ListBuilder, ListConfig};

fn main() {
    pmem::crash::silence_crash_panics();
    let list = ListBuilder {
        list: ListConfig::new(16, 8),
        mode: pmem::PersistenceMode::Tracked,
        pool_words: 1 << 23,
        ..ListBuilder::default()
    }
    .create();

    // Phase 1: insert under a scheduled power failure. `acked` counts
    // inserts whose call returned before the lights went out — exactly the
    // ones strict linearizability obliges the structure to keep.
    let controller = Arc::clone(list.space().pool(0).crash_controller());
    controller.arm_after(400_000);
    let acked = AtomicU64::new(0);
    let threads = 4u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let list = &list;
            let acked = &acked;
            s.spawn(move || {
                pmem::thread::register(t as usize, 0);
                let mut k = t + 1;
                let _ = pmem::run_crashable(|| loop {
                    list.insert(k, k * 10);
                    acked.fetch_add(1, Ordering::Relaxed);
                    k += threads;
                });
                pmem::discard_pending(); // un-fenced flushes die with us
            });
        }
    });
    let acked = acked.load(Ordering::Relaxed);
    println!("power failure! {acked} inserts had been acknowledged");

    // The power cycle: volatile contents are gone.
    controller.disarm();
    for pool in list.space().pools() {
        pool.simulate_crash();
    }

    // Recovery: reconnect + epoch bump. No scan of the structure —
    // inconsistencies are repaired lazily as operations encounter them
    // (§4.1.5).
    let t0 = std::time::Instant::now();
    list.recover();
    println!("recovered in {:?} (size-independent)", t0.elapsed());

    // Every acknowledged insert must still be present.
    let mut found = 0u64;
    for t in 0..threads {
        let mut k = t + 1;
        while let Some(v) = list.get(k) {
            assert_eq!(v, k * 10, "key {k} has a torn value");
            found += 1;
            k += threads;
        }
    }
    println!("verified: {found} keys readable after the crash (≥ {acked} acked)");
    assert!(found >= acked, "an acknowledged insert was lost");
    list.check_invariants();
    println!("structural invariants hold after recovery");
}
