//! The Chapter 6 methodology end-to-end in one run: log every operation,
//! pull the plug mid-workload, recover, keep operating, and feed the whole
//! history (with the crash boundary) to the strict-linearizability
//! analyzer.
//!
//! ```text
//! cargo run --release --example crash_analysis
//! ```

use std::sync::{Arc, Mutex};

use lincheck::{merge, OpKind, ThreadLog, Ticket, EMPTY};
use upskiplist::{ListBuilder, ListConfig};

fn main() {
    pmem::crash::silence_crash_panics();
    let list = ListBuilder {
        list: ListConfig::new(12, 8),
        mode: pmem::PersistenceMode::Tracked,
        pool_words: 1 << 22,
        ..ListBuilder::default()
    }
    .create();
    let ticket = Ticket::new();
    let threads = 4;
    let keyspace = 500u64;

    // Phase 1: writes and reads under a scheduled power failure. Every
    // operation is logged open/closed; an operation cut off by the crash
    // stays open and becomes "pending at crash" for the analyzer.
    let controller = Arc::clone(list.space().pool(0).crash_controller());
    controller.arm_after(120_000);
    let run_phase = |read_pct: u32, seed: u64, base: u32| -> Vec<ThreadLog> {
        let logs = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            for t in 0..threads {
                let list = Arc::clone(&list);
                let logs = Arc::clone(&logs);
                let ticket = &ticket;
                s.spawn(move || {
                    use rand::{Rng, SeedableRng};
                    pmem::thread::register(t, 0);
                    let mut log = ThreadLog::new(base + t as u32);
                    let mut rng = rand::rngs::StdRng::seed_from_u64(seed + t as u64);
                    for _ in 0..4000 {
                        let key = rng.gen_range(1..=keyspace);
                        if rng.gen_range(0..100) < read_pct {
                            let idx = log.begin(ticket, OpKind::Read, key, 0);
                            match pmem::run_crashable(|| list.get(key)) {
                                Ok(v) => log.finish(ticket, idx, v.unwrap_or(EMPTY)),
                                Err(_) => break,
                            }
                        } else {
                            let value = ticket.next();
                            let idx = log.begin(ticket, OpKind::Write, key, value);
                            match pmem::run_crashable(|| list.insert(key, value)) {
                                Ok(old) => log.finish(ticket, idx, old.unwrap_or(EMPTY)),
                                Err(_) => break,
                            }
                        }
                    }
                    pmem::discard_pending();
                    logs.lock().unwrap().push(log);
                });
            }
        });
        Arc::try_unwrap(logs).unwrap().into_inner().unwrap()
    };

    let mut logs = run_phase(30, 1, 0);
    println!(
        "power failure during phase 1 ({} threads cut off mid-operation)",
        threads
    );
    controller.disarm();
    let crash_tick = ticket.next();
    for pool in list.space().pools() {
        pool.simulate_crash();
    }
    list.recover();

    // Phase 2: re-read and re-write the same keyspace after recovery.
    logs.extend(run_phase(70, 99, 100));

    let history = merge(logs, vec![crash_tick]);
    println!(
        "history: {} operations, {} pending at the crash",
        history.ops.len(),
        history.pending_count()
    );
    let result = lincheck::check(&history);
    println!(
        "analysis: {} keys, {} writes, {} reads checked",
        result.keys_checked, result.writes_checked, result.reads_checked
    );
    if result.is_linearizable() {
        println!("verdict: strictly linearizable ✓");
    } else {
        println!("verdict: VIOLATIONS: {:?}", result.violations);
        std::process::exit(1);
    }
}
