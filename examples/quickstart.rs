//! Quickstart: create a recoverable skip list, use the key-value API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use upskiplist::{ListBuilder, ListConfig};

fn main() {
    // A small in-simulation deployment: one PMEM pool, 16-level towers,
    // 8 key-value pairs per node.
    let list = ListBuilder {
        list: ListConfig::new(16, 8),
        ..ListBuilder::default()
    }
    .create();

    // Upsert semantics: `insert` returns the previous value, if any.
    assert_eq!(list.insert(42, 4200), None);
    assert_eq!(list.insert(42, 4300), Some(4200));

    // Point lookups and removals (removals tombstone the value, §4.6).
    assert_eq!(list.get(42), Some(4300));
    assert_eq!(list.remove(42), Some(4300));
    assert_eq!(list.get(42), None);

    // Bulk insert + range query (ascending, live keys only).
    for k in 1..=100u64 {
        list.insert(k, k * k);
    }
    let squares = list.range(10, 15);
    println!("squares of 10..=15: {squares:?}");
    assert_eq!(squares.len(), 6);

    // The structure self-checks its invariants (testing aid).
    list.check_invariants();
    println!(
        "ok: {} live keys across {} multi-key nodes",
        list.count_live(),
        list.node_count()
    );
}
