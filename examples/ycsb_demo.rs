//! Drive the skip list with a real YCSB workload and inspect what the
//! persistence layer did (reads, writes, flushes, fences).
//!
//! ```text
//! cargo run --release --example ycsb_demo -- A     # or B, C, D
//! ```

use std::sync::Arc;

use upskiplist::{ListBuilder, ListConfig};
use ycsb::{generate, workload_by_name, Op, WORKLOAD_A};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "A".into());
    let spec = workload_by_name(&name).unwrap_or(WORKLOAD_A);
    let records = 20_000;
    let ops = 100_000;
    let threads = 4;
    println!(
        "workload {}: {}% read / {}% update / {}% insert, {:?} distribution",
        spec.name, spec.read_pct, spec.update_pct, spec.insert_pct, spec.distribution
    );

    let list = ListBuilder {
        list: ListConfig::new(16, 64),
        pool_words: 1 << 23,
        ..ListBuilder::default()
    }
    .create();
    let w = generate(spec, records, ops, threads, 7);

    // Load phase.
    for &(k, v) in &w.load {
        list.insert(k, v);
    }
    let before = list.space().pool(0).stats().snapshot();

    // Run phase.
    let t0 = std::time::Instant::now();
    std::thread::scope(|s| {
        for (t, trace) in w.ops.iter().enumerate() {
            let list = Arc::clone(&list);
            s.spawn(move || {
                pmem::thread::register(t, 0);
                for op in trace {
                    match *op {
                        Op::Read(k) => {
                            std::hint::black_box(list.get(k));
                        }
                        Op::Scan(k, n) => {
                            std::hint::black_box(list.scan(k, n as usize));
                        }
                        Op::Rmw(k, v) => {
                            std::hint::black_box(list.get(k));
                            list.insert(k, v);
                        }
                        Op::Update(k, v) | Op::Insert(k, v) => {
                            list.insert(k, v);
                        }
                    }
                }
            });
        }
    });
    let dt = t0.elapsed();
    let d = list.space().pool(0).stats().snapshot().since(&before);

    println!(
        "{ops} ops in {dt:?} ({:.3} Mops/s)",
        ops as f64 / dt.as_secs_f64() / 1e6
    );
    println!("pmem traffic per operation:");
    println!("  line reads : {:.1}", d.reads as f64 / ops as f64);
    println!("  word writes: {:.1}", d.writes as f64 / ops as f64);
    println!("  CAS ops    : {:.1}", d.cas_ops as f64 / ops as f64);
    println!("  flushes    : {:.2}", d.flushes as f64 / ops as f64);
    println!("  fences     : {:.2}", d.fences as f64 / ops as f64);
    println!(
        "structure: {} live keys in {} nodes",
        list.count_live(),
        list.node_count()
    );
}
